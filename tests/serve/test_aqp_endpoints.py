"""HTTP blitz for the approximate tier: /aqp, /aqp/train, mode=approx.

Schema of approx answers (tolerance + model/store version stamps),
parameter validation (400s), infeasibility agreement (409s), and the
mid-flight ``apply_delta`` contract: the first approx query after a
delta falls back to exact with consistent version stamps, the adaptive
retrain restores the approx path at a bumped model version.
"""

import pytest

from repro.core import build_store
from repro.incremental import month_append_delta, month_split_store
from repro.serve import ServeClient, ServeHTTPError, ServerState, serve_in_thread

from .conftest import N_MONTHS, SUBSET

BASE_MONTH = 3
BUDGETS = (30.0, 60.0, 90.0)


@pytest.fixture(scope="module")
def aqp_served(dataset, tmp_path_factory):
    store, costs, __ = build_store(dataset.task)
    root = tmp_path_factory.mktemp("aqp-serve")
    state = ServerState(
        dataset.task,
        store,
        dataset.hierarchies,
        tables_dir=root / "tables",
        costs=costs,
        dataset_name="mailorder",
        min_subset_size=3,
        aqp_dir=root / "aqp",
    )
    with serve_in_thread(state) as handle:
        yield handle


@pytest.fixture()
def aqp_client(aqp_served):
    with ServeClient(aqp_served.host, aqp_served.port) as c:
        yield c


@pytest.fixture(scope="module")
def trained(aqp_served):
    """Journal a deterministic exact workload, then train (idempotent)."""
    with ServeClient(aqp_served.host, aqp_served.port) as c:
        for budget in BUDGETS:
            for items in (None, SUBSET):
                c.bellwether(budget=budget, items=items)
            c.predict(items=SUBSET, budget=budget)
        return c.aqp_train()


# ----------------------------------------------------------- status/train


def test_aqp_status_before_training(aqp_client):
    status = aqp_client.aqp()
    assert status["enabled"] is True
    assert status["degraded"] is False
    assert "store_version" in status


def test_aqp_disabled_on_plain_server(client):
    # The shared module fixture has no aqp_dir: status still answers.
    assert client.aqp() == {
        "store_version": client.model()["store_version"],
        "enabled": False,
    }
    with pytest.raises(ServeHTTPError) as exc:
        client.aqp_train()
    assert exc.value.status == 404
    with pytest.raises(ServeHTTPError) as exc:
        client.bellwether(budget=60.0, mode="approx")
    assert exc.value.status == 400


def test_train_reports_model_and_journal_geometry(trained):
    assert trained["model_version"] >= 1
    assert trained["n_records"] >= 2 * len(BUDGETS)
    assert trained["n_trained_keys"] >= 2
    assert trained["n_artifacts"] >= 1
    assert "store_version" in trained


def test_method_mismatches_are_405(aqp_client):
    for method, path in (("POST", "/aqp"), ("GET", "/aqp/train")):
        with pytest.raises(ServeHTTPError) as exc:
            aqp_client._request(method, path, {} if method == "POST" else None)
        assert exc.value.status == 405


# ------------------------------------------------------- approx responses


def test_approx_bellwether_schema(aqp_client, trained):
    exact = aqp_client.bellwether(budget=60.0, items=SUBSET)
    got = aqp_client.bellwether(budget=60.0, items=SUBSET, mode="approx")
    assert got["mode"] == "approx"
    assert got["model_version"] == trained["model_version"]
    assert got["store_version"] == exact["store_version"]
    assert got["tolerance"] >= got["estimated_error"] >= 0.0
    assert got["found"] is True
    bw = got["bellwether"]
    assert bw["error_kind"] == "approx"
    assert bw["region_str"] == exact["bellwether"]["region_str"]
    assert abs(bw["rmse"] - exact["bellwether"]["rmse"]) <= got["tolerance"]
    assert got["n_feasible"] == exact["n_feasible"]
    assert [f["region_str"] for f in got["feasible"]] == [
        f["region_str"] for f in exact["feasible"]
    ]
    # Exact responses carry no fallback annotations.
    assert "fallback_reason" not in exact
    assert exact["mode"] == "exact"


def test_declared_tolerance_echoes_request(aqp_client, trained):
    got = aqp_client.bellwether(
        budget=60.0, items=SUBSET, mode="approx", tolerance=1e6
    )
    assert got["mode"] == "approx"
    assert got["tolerance"] == 1e6
    assert got["estimated_error"] <= 1e6


def test_approx_predict_is_bit_equal_exact_artifact(aqp_client, trained):
    exact = aqp_client.predict(items=SUBSET, budget=60.0)
    got = aqp_client.predict(items=SUBSET, budget=60.0, mode="approx")
    assert got["mode"] == "approx"
    assert got["model_version"] == trained["model_version"]
    for field in ("store_version", "region_str", "coef", "predictions", "aggregate"):
        assert got[field] == exact[field], field


def test_unseen_subset_falls_back_to_exact(aqp_client, trained):
    # Same size as SUBSET (so it stays feasible) but different composition
    # (so its quantized key was never journaled).
    novel = [1, 3, 5, 7, 9, 11, 13, 15, 16, 18, 19, 20]
    exact = aqp_client.bellwether(budget=60.0, items=novel)
    got = aqp_client.bellwether(budget=60.0, items=novel, mode="approx")
    assert got["mode"] == "exact"
    assert got["requested_mode"] == "approx"
    assert got["fallback_reason"] in ("unseen_key", "tolerance")
    assert got["bellwether"] == exact["bellwether"]
    assert got["store_version"] == exact["store_version"]


def test_infeasible_approx_is_409_like_exact(aqp_client, trained):
    for mode in (None, "approx"):
        with pytest.raises(ServeHTTPError) as exc:
            aqp_client.bellwether(budget=1e-6, items=SUBSET, mode=mode)
        assert exc.value.status == 409


# --------------------------------------------------------------- 400 wall


@pytest.mark.parametrize(
    "body",
    [
        {"budget": 60.0, "mode": "sorta"},
        {"budget": 60.0, "mode": 7},
        {"budget": 60.0, "tolerance": 0.5},  # tolerance without approx
        {"budget": 60.0, "mode": "exact", "tolerance": 0.5},
        {"budget": 60.0, "mode": "approx", "tolerance": 0.0},
        {"budget": 60.0, "mode": "approx", "tolerance": -1.0},
        {"budget": 60.0, "mode": "approx", "tolerance": True},
        {"budget": 60.0, "mode": "approx", "tolerance": "tight"},
    ],
    ids=[
        "bad-mode", "nonstring-mode", "tolerance-without-approx",
        "tolerance-on-exact", "zero-tolerance", "negative-tolerance",
        "bool-tolerance", "string-tolerance",
    ],
)
def test_bad_mode_or_tolerance_is_400(aqp_client, body):
    with pytest.raises(ServeHTTPError) as exc:
        aqp_client._request("POST", "/bellwether", body)
    assert exc.value.status == 400
    assert exc.value.payload["error"]["status"] == 400


# ------------------------------------------- mid-flight delta consistency


def test_midflight_delta_forces_fallback_then_retrain(dataset, tmp_path):
    gen, regions, store = month_split_store(dataset.task, BASE_MONTH)
    state = ServerState(
        dataset.task,
        store,
        dataset.hierarchies,
        tables_dir=tmp_path / "tables",
        dataset_name="mailorder",
        min_subset_size=3,
        aqp_dir=tmp_path / "aqp",
    )
    with serve_in_thread(state) as handle:
        with ServeClient(handle.host, handle.port) as c:
            for budget in BUDGETS:
                c.bellwether(budget=budget, items=SUBSET)
            info = c.aqp_train()
            warm = c.bellwether(budget=BUDGETS[0], items=SUBSET, mode="approx")
            assert warm["mode"] == "approx"

            # Land a delta mid-flight: the model is now version-stale.
            delta = month_append_delta(gen, regions, BASE_MONTH + 1)
            applied = state.apply_delta(delta)
            new_version = applied["store_version"]
            assert new_version > warm["store_version"]

            # First approx query after the delta: exact fallback, stamped
            # with the *new* store version (never a stale mix).
            fell = c.bellwether(budget=BUDGETS[0], items=SUBSET, mode="approx")
            assert fell["mode"] == "exact"
            assert fell["requested_mode"] == "approx"
            assert fell["fallback_reason"] == "version_drift"
            assert fell["store_version"] == new_version
            exact = c.bellwether(budget=BUDGETS[0], items=SUBSET)
            assert fell["bellwether"] == exact["bellwether"]

            # The adaptive retrain already ran: approx answers again, at a
            # bumped model version, stamped with the new store version.
            again = c.bellwether(budget=BUDGETS[0], items=SUBSET, mode="approx")
            assert again["mode"] == "approx"
            assert again["store_version"] == new_version
            assert again["model_version"] > info["model_version"]
            status = c.aqp()
            assert status["degraded"] is False
            assert status["versions_behind"] == 0
