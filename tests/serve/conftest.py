"""Shared live-server fixtures for the serve blitz.

Each test module gets its own in-process server (module scope) over a
small mail-order deployment, so mutation tests cannot leak state across
modules, and each test function gets a fresh keep-alive client.
"""

import pytest

from repro.core import build_store
from repro.datasets import make_mailorder
from repro.ml import TrainingSetEstimator
from repro.serve import ServeClient, ServerState, serve_in_thread

N_ITEMS = 20
N_MONTHS = 5
# Restricting a ~20-row region block to too few items starves the fit
# below min_examples everywhere; 12 of 20 items keeps plenty of regions
# feasible at every month split the tests use.
SUBSET = [1, 2, 4, 6, 8, 9, 10, 12, 14, 15, 17, 20]


@pytest.fixture(scope="module")
def dataset():
    return make_mailorder(
        n_items=N_ITEMS,
        n_months=N_MONTHS,
        seed=0,
        error_estimator=TrainingSetEstimator(),
    )


@pytest.fixture(scope="module")
def served(dataset, tmp_path_factory):
    store, costs, __ = build_store(dataset.task)
    state = ServerState(
        dataset.task,
        store,
        dataset.hierarchies,
        tables_dir=tmp_path_factory.mktemp("tables"),
        costs=costs,
        dataset_name="mailorder",
        min_subset_size=3,
    )
    with serve_in_thread(state) as handle:
        yield handle


@pytest.fixture()
def client(served):
    with ServeClient(served.host, served.port) as c:
        yield c
