"""Structured JSON errors from the ReproError hierarchy, per status code."""

import http.client
import json

import pytest

from repro.serve import ServeHTTPError


def _raw(served, method, path, body=None):
    conn = http.client.HTTPConnection(served.host, served.port, timeout=30)
    try:
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read() or b"{}")
    finally:
        conn.close()


def _assert_error(payload, status, error_type):
    error = payload["error"]
    assert error["type"] == error_type
    assert error["status"] == status
    assert error["message"]


def test_malformed_json_body_is_400(served):
    status, payload = _raw(served, "POST", "/bellwether", b"{not json")
    assert status == 400
    _assert_error(payload, 400, "BadRequestError")


def test_non_object_json_body_is_400(served):
    status, payload = _raw(served, "POST", "/bellwether", b"[1, 2, 3]")
    assert status == 400
    _assert_error(payload, 400, "BadRequestError")


def test_items_must_be_a_nonempty_list(served):
    for items in (123, "abc", [], {"a": 1}):
        status, payload = _raw(
            served, "POST", "/predict", json.dumps({"items": items}).encode()
        )
        assert status == 400, items
        _assert_error(payload, 400, "BadRequestError")


def test_unknown_item_ids_are_400(client):
    with pytest.raises(ServeHTTPError) as excinfo:
        client.bellwether(budget=50.0, items=[9_999_999])
    assert excinfo.value.status == 400
    _assert_error(excinfo.value.payload, 400, "BadRequestError")
    assert "9999999" in excinfo.value.payload["error"]["message"]


def test_non_numeric_budget_is_400(served):
    status, payload = _raw(
        served, "POST", "/bellwether", json.dumps({"budget": "cheap"}).encode()
    )
    assert status == 400
    _assert_error(payload, 400, "BadRequestError")


def test_unknown_endpoint_is_404(served):
    status, payload = _raw(served, "GET", "/nope")
    assert status == 404
    _assert_error(payload, 404, "NotFoundError")


def test_wrong_method_is_405(served):
    status, payload = _raw(served, "GET", "/bellwether")
    assert status == 405
    _assert_error(payload, 405, "MethodNotAllowedError")
    status, payload = _raw(served, "POST", "/model", b"{}")
    assert status == 405
    _assert_error(payload, 405, "MethodNotAllowedError")


def test_unknown_region_is_404(client):
    key = client.regions()["regions"][0]["key"]
    bogus = ["Nowhere" if isinstance(v, str) else v for v in key]
    with pytest.raises(ServeHTTPError) as excinfo:
        client.predict(items=[1, 2, 3], region=bogus)
    assert excinfo.value.status == 404
    _assert_error(excinfo.value.payload, 404, "NotFoundError")


def test_unintelligible_region_key_is_400(client):
    with pytest.raises(ServeHTTPError) as excinfo:
        client.predict(items=[1, 2, 3], region=[{"bogus": 1}])
    assert excinfo.value.status == 400
    _assert_error(excinfo.value.payload, 400, "BadRequestError")


def test_infeasible_budget_is_409(client):
    with pytest.raises(ServeHTTPError) as excinfo:
        client.bellwether(budget=1e-9)
    assert excinfo.value.status == 409
    _assert_error(excinfo.value.payload, 409, "InfeasibleQueryError")


def test_unknown_cube_level_is_404(client):
    with pytest.raises(ServeHTTPError) as excinfo:
        client.cube(level=(99, 99))
    assert excinfo.value.status == 404
    _assert_error(excinfo.value.payload, 404, "NotFoundError")


def test_bad_cube_level_param_is_400(served):
    status, payload = _raw(served, "GET", "/cube?level=x,y")
    assert status == 400
    _assert_error(payload, 400, "BadRequestError")
