"""Endpoint schema round-trips against a live in-process server."""

import numpy as np

from repro.core import BasicBellwetherSearch
from repro.serve import ENDPOINTS

from .conftest import N_ITEMS, SUBSET


def test_model_schema(client, dataset):
    model = client.model()
    assert model["service"] == "repro.serve"
    assert model["dataset"] == "mailorder"
    assert model["n_items"] == N_ITEMS
    assert model["item_ids"] == sorted(int(i) for i in dataset.task.item_ids)
    assert model["n_regions"] > 0
    assert model["n_examples_total"] > 0
    assert model["store_version"] >= 0
    assert list(model["endpoints"]) == list(ENDPOINTS)
    lattice = model["lattice"]
    assert lattice["n_levels"] >= 1
    assert lattice["n_significant_subsets"] >= 1
    assert lattice["min_subset_size"] == 3


def test_healthz(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["uptime_s"] >= 0
    assert health["store_version"] >= 0


def test_metricsz_snapshots_the_registry(client):
    snapshot = client.metricsz()
    assert snapshot["store_version"] >= 0
    metrics = snapshot["metrics"]
    assert metrics["serve.requests"] >= 1
    assert "store.full_scans" in metrics


def test_regions_schema(client, served):
    payload = client.regions()
    assert payload["n_regions"] == len(payload["regions"])
    assert payload["n_regions"] == len(served.state.store.regions())
    for entry in payload["regions"]:
        assert entry["cost"] > 0
        assert isinstance(entry["region"], str)
        if entry["evaluable"]:
            assert entry["rmse"] >= 0
            assert entry["n_examples"] > 0
        else:
            assert entry["rmse"] is None
    # The key field is the wire-protocol cell address: it must round-trip
    # through /predict (cell addressing satellite).
    first = next(e for e in payload["regions"] if e["evaluable"])
    predicted = client.predict(items=SUBSET, region=first["key"])
    assert predicted["region_str"] == first["region"]


def test_cube_levels_and_crosstab(client):
    overview = client.cube()
    assert overview["n_subsets"] == sum(
        lv["n_subsets"] for lv in overview["levels"]
    )
    level = tuple(overview["levels"][0]["level"])
    table = client.cube(level=level)
    assert table["level"] == list(level)
    assert table["n_subsets"] == len(table["subsets"])
    for entry in table["subsets"]:
        assert entry["n_items"] >= 1
        if entry["found"]:
            assert entry["region_str"]
            assert entry["rmse"] >= 0


def test_bellwether_subset_matches_direct_search(client, served):
    """A restricted /bellwether equals the raw in-process search, bitwise."""
    got = client.bellwether(budget=50.0, items=SUBSET)
    state = served.state
    direct = BasicBellwetherSearch(state.task, state.store, costs=None)
    expected = direct.run(budget=50.0, item_ids=SUBSET)
    assert got["found"] is True
    assert got["items"] == sorted(SUBSET)
    assert got["store_version"] == int(state.store.version)
    assert got["bellwether"]["region_str"] == str(expected.bellwether.region)
    assert got["bellwether"]["rmse"] == float(expected.bellwether.rmse)
    assert got["n_feasible"] == len(expected.feasible)
    assert [e["region_str"] for e in got["feasible"]] == [
        str(r.region) for r in expected.feasible
    ]


def test_predict_round_trip(client, served):
    got = client.predict(items=SUBSET, budget=90.0)
    assert got["items"] == sorted(SUBSET)
    assert len(got["predictions"]) == len(SUBSET)
    total = 0.0
    for entry, item in zip(got["predictions"], sorted(SUBSET)):
        assert entry["item"] == item
        total += entry["value"]
    assert got["aggregate"] == total

    # The per-item values come from the region model h_r on one
    # representative row each (BasicPredictor semantics).
    state = served.state
    search = BasicBellwetherSearch(state.task, state.store)
    region = next(
        r for r in state.store.regions() if str(r) == got["region_str"]
    )
    model = search.fit_model(region, item_ids=SUBSET)
    assert got["coef"] == [float(c) for c in model.coef]
    block = state.store.read(region)
    for entry in got["predictions"]:
        hit = np.flatnonzero(block.item_ids == entry["item"])
        if not entry["fallback"]:
            assert entry["value"] == float(model.predict(block.x[hit[0]])[0])
        else:
            assert hit.size == 0


def test_bellwether_without_budget_uses_task_criterion(client, served):
    got = client.bellwether()
    direct = BasicBellwetherSearch(served.state.task, served.state.store)
    direct.evaluate_from_tables(served.state._tables)
    expected = direct.run()
    assert got["budget"] is None
    assert got["bellwether"]["region_str"] == str(expected.bellwether.region)
