"""RWLock acquisition timeouts and the /healthz 503 degradation.

A wedged writer must not hang liveness probes: ``acquire_read`` /
``acquire_write`` take an optional deadline raising
:class:`LockTimeoutError`, and ``/healthz`` uses a short one so the
health check answers 503 (service up, state wedged) instead of timing
out at the transport — which reads as a dead process and gets the
server killed.
"""

import pytest

from repro.core import build_store
from repro.serve import ServeClient, ServeHTTPError, ServerState, serve_in_thread
from repro.serve.locks import LockTimeoutError, RWLock

TIMEOUT = 0.05


class TestRWLockTimeouts:
    def test_read_times_out_under_writer(self):
        lock = RWLock(name="t.rw")
        lock.acquire_write()
        with pytest.raises(LockTimeoutError):
            lock.acquire_read(timeout=TIMEOUT)
        lock.release_write()
        # The timed-out attempt left no residue: reads proceed.
        with lock.read(timeout=TIMEOUT):
            pass

    def test_write_times_out_under_reader(self):
        lock = RWLock(name="t2.rw")
        lock.acquire_read()
        with pytest.raises(LockTimeoutError):
            lock.acquire_write(timeout=TIMEOUT)
        # The timed-out writer must stop gating new readers
        # (writer-preference would otherwise park them forever).
        with lock.read(timeout=TIMEOUT):
            pass
        lock.release_read()
        with lock.write(timeout=TIMEOUT):
            pass

    def test_no_timeout_is_the_default_contract(self):
        lock = RWLock(name="t3.rw")
        with lock.read():
            assert lock.readers == 1
        with lock.write():
            assert lock.writer_active


def test_healthz_degrades_to_503_on_wedged_writer(dataset, tmp_path):
    store, costs, __ = build_store(dataset.task)
    state = ServerState(
        dataset.task,
        store,
        dataset.hierarchies,
        tables_dir=tmp_path / "tables",
        costs=costs,
        dataset_name="mailorder",
        min_subset_size=3,
        health_timeout=0.1,
    )
    with serve_in_thread(state) as handle:
        with ServeClient(handle.host, handle.port) as client:
            assert client.healthz()["status"] == "ok"
            state._rw.acquire_write()  # wedge the writer
            try:
                with pytest.raises(ServeHTTPError) as exc_info:
                    client.healthz()
                assert exc_info.value.status == 503
                payload = exc_info.value.payload["error"]
                assert payload["type"] == "ServiceUnavailableError"
            finally:
                state._rw.release_write()
            # Recovery: the probe answers ok again once the writer moves.
            assert client.healthz()["status"] == "ok"
