"""32-thread hammer on the approx tier's model-swap lock.

Clients pound ``mode=approx`` while the main thread lands deltas (each
one forces fallback-then-retrain, i.e. a model swap under the write
lock).  Every response must be internally consistent — version stamps
never mix, approx rmse stays within its declared tolerance of the exact
answer *at that exact store version*, and each thread observes
monotonically non-decreasing (store_version, model_version) pairs.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core import BasicBellwetherSearch
from repro.incremental import month_append_delta, month_split_store
from repro.serve import (
    ServeClient,
    ServeHTTPError,
    ServerState,
    serve_in_thread,
)

from .conftest import N_MONTHS, SUBSET

BASE_MONTH = 3
BUDGET = 60.0
N_THREADS = 32
FALLBACK_REASONS = {
    "no_model", "unseen_key", "uncovered_region", "tolerance",
    "version_drift", "journal_error",
}


def _exact_rmse_by_version(dataset):
    """region_str -> exact rmse, per store version of the delta stream."""
    refs = {}
    gen, regions, store = month_split_store(dataset.task, BASE_MONTH)

    def snap():
        # A fresh search per version: a delta can surface brand-new
        # regions the old search never costed.
        result = BasicBellwetherSearch(dataset.task, store).run(
            budget=BUDGET, item_ids=SUBSET
        )
        refs[int(store.version)] = {
            str(rr.region): float(rr.rmse) for rr in result.feasible
        }

    snap()
    for month in range(BASE_MONTH + 1, N_MONTHS + 1):
        store.apply_delta(month_append_delta(gen, regions, month))
        snap()
    return refs


def test_32_threads_hammer_model_swaps(dataset, tmp_path, lockcheck):
    _run_hammer(dataset, tmp_path, delta_pause_s=0.25)


@pytest.mark.slow
def test_long_hammer_model_swaps(dataset, tmp_path, lockcheck):
    """Nightly-scale variant: longer windows around every model swap."""
    _run_hammer(dataset, tmp_path, delta_pause_s=2.0, extra_trains=10)


def _run_hammer(dataset, tmp_path, delta_pause_s, extra_trains=0):
    refs = _exact_rmse_by_version(dataset)

    gen, regions, store = month_split_store(dataset.task, BASE_MONTH)
    state = ServerState(
        dataset.task,
        store,
        dataset.hierarchies,
        tables_dir=tmp_path / "tables",
        dataset_name="mailorder",
        min_subset_size=3,
        aqp_dir=tmp_path / "aqp",
    )
    stop = threading.Event()
    errors: list[str] = []
    seen: list[dict] = []
    record_lock = threading.Lock()

    def hammer(handle, index: int):
        last = (0, 0)
        with ServeClient(handle.host, handle.port) as client:
            while not stop.is_set():
                try:
                    got = client.bellwether(
                        budget=BUDGET, items=SUBSET, mode="approx"
                    )
                except ServeHTTPError as exc:
                    if exc.status != 409:
                        with record_lock:
                            errors.append(
                                f"thread {index}: HTTP {exc.status} "
                                f"{exc.payload}"
                            )
                    continue
                problems = []
                version = got.get("store_version")
                if version not in refs:
                    problems.append(f"unknown store version {version}")
                if got["mode"] == "approx":
                    stamp = (version, got["model_version"])
                    if stamp < last:
                        problems.append(
                            f"stamps went backwards: {last} -> {stamp}"
                        )
                    last = stamp
                    bw = got["bellwether"]
                    exact = refs.get(version, {}).get(bw["region_str"])
                    if exact is None:
                        problems.append(
                            f"winner {bw['region_str']} not feasible "
                            f"at version {version}"
                        )
                    elif abs(bw["rmse"] - exact) > got["tolerance"]:
                        problems.append(
                            f"|{bw['rmse']} - {exact}| > "
                            f"tolerance {got['tolerance']}"
                        )
                    if got["estimated_error"] > got["tolerance"]:
                        problems.append("estimate exceeds declared tolerance")
                elif got["mode"] == "exact":
                    if got.get("requested_mode") != "approx":
                        problems.append("fallback lost requested_mode")
                    if got.get("fallback_reason") not in FALLBACK_REASONS:
                        problems.append(
                            f"bad fallback_reason "
                            f"{got.get('fallback_reason')!r}"
                        )
                    exact = refs.get(version, {}).get(
                        got["bellwether"]["region_str"]
                    )
                    if exact is not None and got["bellwether"]["rmse"] != exact:
                        problems.append("exact fallback rmse mismatch")
                else:
                    problems.append(f"bad mode {got['mode']!r}")
                with record_lock:
                    seen.append(got)
                    for problem in problems:
                        errors.append(f"thread {index}: {problem}")

    with serve_in_thread(state) as handle:
        # Train an initial surface so the hammer starts on the warm path.
        with ServeClient(handle.host, handle.port) as client:
            client.bellwether(budget=BUDGET, items=SUBSET)
            client.aqp_train()
        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            futures = [
                pool.submit(hammer, handle, i) for i in range(N_THREADS)
            ]
            for month in range(BASE_MONTH + 1, N_MONTHS + 1):
                time.sleep(delta_pause_s)
                state.apply_delta(month_append_delta(gen, regions, month))
            # The long variant keeps swapping models after the last delta:
            # every explicit retrain bumps the version under the write
            # lock while the hammer reads.
            with ServeClient(handle.host, handle.port) as trainer:
                for __ in range(extra_trains):
                    time.sleep(delta_pause_s / 4)
                    trainer.aqp_train()
            time.sleep(delta_pause_s)
            stop.set()
            for future in futures:
                future.result(timeout=60)

    assert not errors, "\n".join(errors[:20])
    assert seen, "hammer threads recorded no responses"
    modes = {got["mode"] for got in seen}
    # The hammer must actually exercise both paths: warm approx answers
    # and the fallback window around each model swap.
    assert modes == {"approx", "exact"}, modes
    versions = {got["store_version"] for got in seen}
    assert len(versions) > 1, "no delta landed during the hammer"
