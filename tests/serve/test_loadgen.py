"""The load harness: seeded plan determinism and a live mini-run."""

import pytest

from repro.exceptions import ConfigError
from repro.serve import run_loadgen
from repro.serve.loadgen import _MIX, build_plans


def _freeze(query):
    return tuple(
        tuple(part) if isinstance(part, list) else part for part in query
    )


def test_build_plans_is_seed_deterministic():
    args = dict(
        clients=6,
        requests_per_client=5,
        item_ids=list(range(1, 21)),
        budgets=(20.0, 50.0),
        levels=[(0, 0), (1, 0)],
    )
    plans_a, warmup_a = build_plans(seed=3, **args)
    plans_b, warmup_b = build_plans(seed=3, **args)
    plans_c, __ = build_plans(seed=4, **args)
    assert plans_a == plans_b
    assert warmup_a == warmup_b
    assert plans_a != plans_c


def test_warmup_covers_every_measured_query():
    """The measured pass must run entirely on server-warm queries."""
    plans, warmup = build_plans(
        clients=16,
        requests_per_client=10,
        seed=0,
        item_ids=list(range(1, 21)),
        budgets=(20.0, 50.0, 90.0),
        levels=[(0, 0)],
    )
    warm = {_freeze(q) for q in warmup}
    measured = {_freeze(q) for plan in plans for q in plan}
    assert measured <= warm


def test_mix_weights_are_normalized():
    assert abs(sum(w for __, w in _MIX) - 1.0) < 1e-12


def test_empty_item_ids_is_a_config_error():
    with pytest.raises(ConfigError):
        build_plans(
            clients=1,
            requests_per_client=1,
            seed=0,
            item_ids=[],
            budgets=(10.0,),
            levels=[],
        )


def test_live_mini_run(served):
    result = run_loadgen(
        served.host,
        served.port,
        clients=4,
        requests_per_client=3,
        seed=1,
    )
    assert result.n_requests == 12
    assert result.n_errors == 0
    assert result.p50_ms <= result.p99_ms
    assert result.rps > 0
    assert sum(result.mix.values()) == 12
    assert "loadgen: 4 clients" in result.render()
