"""serve.* instrumentation: catalogued, populated, and the zero-scan claim.

The decisive assertion: a warm /bellwether leaves ``store.full_scans``
untouched (the materialized-tables serving claim), measured through the
server's own /metricsz endpoint.
"""

import numpy as np
import pytest

from repro.obs import catalog
from repro.serve import ServeHTTPError
from repro.storage import BlockDelta, StoreDelta

from .conftest import SUBSET

SERVE_COUNTERS = (
    catalog.SERVE_REQUESTS,
    catalog.SERVE_ERRORS,
    catalog.SERVE_CACHE_HITS,
    catalog.SERVE_CACHE_MISSES,
    catalog.SERVE_VERSION_ADOPTIONS,
    catalog.SERVE_ZERO_SCAN_QUERIES,
)
SERVE_HISTOGRAMS = (
    catalog.SERVE_LATENCY_MODEL,
    catalog.SERVE_LATENCY_REGIONS,
    catalog.SERVE_LATENCY_CUBE,
    catalog.SERVE_LATENCY_BELLWETHER,
    catalog.SERVE_LATENCY_PREDICT,
)


def test_serve_instruments_are_catalogued():
    """RPR002's precondition: every serve metric name is in the catalog."""
    for name in SERVE_COUNTERS:
        assert name in catalog.COUNTERS
    for name in SERVE_HISTOGRAMS:
        assert name in catalog.HISTOGRAMS


def _metric(client, name):
    return client.metricsz()["metrics"][name]


def test_requests_and_latency_populate(client):
    client.bellwether(budget=50.0)
    client.model()
    metrics = client.metricsz()["metrics"]
    assert metrics[catalog.SERVE_REQUESTS] >= 2
    assert metrics[f"{catalog.SERVE_LATENCY_BELLWETHER}.count"] >= 1
    assert metrics[f"{catalog.SERVE_LATENCY_MODEL}.count"] >= 1
    assert metrics[f"{catalog.SERVE_LATENCY_BELLWETHER}.p99"] >= 0


def test_errors_counter_increments(client):
    before = _metric(client, catalog.SERVE_ERRORS)
    with pytest.raises(ServeHTTPError):
        client.bellwether(budget="not-a-number")
    assert _metric(client, catalog.SERVE_ERRORS) == before + 1


def test_warm_bellwether_performs_zero_full_scans(client):
    """The tentpole metrics claim, asserted through the service itself."""
    # First touch of this subset may scan (cold profile build).
    client.bellwether(budget=50.0, items=SUBSET)
    scans = _metric(client, catalog.STORE_FULL_SCANS)
    zero_scan = _metric(client, catalog.SERVE_ZERO_SCAN_QUERIES)
    hits = _metric(client, catalog.SERVE_CACHE_HITS)
    for __ in range(3):
        client.bellwether(budget=50.0, items=SUBSET)
        client.bellwether(budget=50.0)
    assert _metric(client, catalog.STORE_FULL_SCANS) == scans
    assert _metric(client, catalog.SERVE_ZERO_SCAN_QUERIES) == zero_scan + 6
    assert _metric(client, catalog.SERVE_CACHE_HITS) == hits + 6


def test_version_adoption_counted_once_per_delta(served, client):
    before = _metric(client, catalog.SERVE_VERSION_ADOPTIONS)
    state = served.state
    region = state.store.regions()[0]
    block = state.store.read(region)
    victim = np.unique(block.item_ids)[:1]
    state.apply_delta(StoreDelta({region: BlockDelta(retract_ids=victim)}))
    client.bellwether(budget=50.0)
    assert _metric(client, catalog.SERVE_VERSION_ADOPTIONS) == before + 1
