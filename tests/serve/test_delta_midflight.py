"""Delta-mid-flight consistency: every response is version-stamped and
equals the serial answer at exactly that version — never a mix of two.

Eight clients hammer a subset /bellwether while the main thread lands
month-append deltas on the live server.  The reference answers are
computed beforehand by replaying the identical delta stream on a second
store and running the in-process search at each version.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.core import BasicBellwetherSearch
from repro.incremental import month_append_delta, month_split_store
from repro.serve import (
    ServeClient,
    ServeHTTPError,
    ServerState,
    serve_in_thread,
)

from .conftest import N_MONTHS, SUBSET

BASE_MONTH = 3
BUDGET = 60.0
N_CLIENTS = 8


def _answer(task, store):
    result = BasicBellwetherSearch(task, store).run(
        budget=BUDGET, item_ids=SUBSET
    )
    if result.bellwether is None:
        return None
    return (
        str(result.bellwether.region),
        float(result.bellwether.rmse),
        len(result.feasible),
    )


def _reference_by_version(dataset):
    refs = {}
    gen, regions, store = month_split_store(dataset.task, BASE_MONTH)
    refs[int(store.version)] = _answer(dataset.task, store)
    for month in range(BASE_MONTH + 1, N_MONTHS + 1):
        store.apply_delta(month_append_delta(gen, regions, month))
        refs[int(store.version)] = _answer(dataset.task, store)
    return refs


def test_responses_never_mix_store_versions(dataset, tmp_path, lockcheck):
    refs = _reference_by_version(dataset)

    gen, regions, store = month_split_store(dataset.task, BASE_MONTH)
    state = ServerState(
        dataset.task,
        store,
        dataset.hierarchies,
        tables_dir=tmp_path / "tables",
        min_subset_size=3,
    )
    stop = threading.Event()
    seen: list[dict] = []
    seen_lock = threading.Lock()

    def churn(handle):
        with ServeClient(handle.host, handle.port) as client:
            while not stop.is_set():
                try:
                    got = client.bellwether(budget=BUDGET, items=SUBSET)
                except ServeHTTPError as exc:
                    assert exc.status == 409
                    continue
                with seen_lock:
                    seen.append(got)

    with serve_in_thread(state) as handle:
        with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
            futures = [
                pool.submit(churn, handle) for __ in range(N_CLIENTS)
            ]
            for month in range(BASE_MONTH + 1, N_MONTHS + 1):
                time.sleep(0.15)
                state.apply_delta(month_append_delta(gen, regions, month))
            time.sleep(0.15)
            stop.set()
            for future in futures:
                future.result(timeout=60)
        # One last serial query: the server must have adopted the final
        # version (live tracking without restarts).
        with ServeClient(handle.host, handle.port) as client:
            final = client.bellwether(budget=BUDGET, items=SUBSET)

    assert final["store_version"] == max(refs)
    assert seen, "churn clients recorded no responses"
    versions = {got["store_version"] for got in seen}
    assert versions <= set(refs)
    for got in seen + [final]:
        want = refs[got["store_version"]]
        assert want is not None
        assert (
            got["bellwether"]["region_str"],
            got["bellwether"]["rmse"],
            got["n_feasible"],
        ) == want, f"at store version {got['store_version']}"
