"""Tests for the columnar storage backend (``repro.storage.columnar``).

Covers byte-level round trips against the npz backend, streaming writers,
bounded-memory chunked scans with their dedicated counters, delta
application, backend sniffing, and the failure modes (missing pyarrow,
corrupt manifests, torn manifest writes).
"""

import json

import numpy as np
import pytest

from repro.dimensions import Region
from repro.exceptions import ConfigError
from repro.obs import get_registry
from repro.storage import (
    BlockDelta,
    ColumnarStore,
    DiskStore,
    MemoryStore,
    RegionBlock,
    StorageError,
    StoreDelta,
    open_store,
)


def _block(n: int, p: int = 3, seed: int = 0, weighted: bool = False) -> RegionBlock:
    rng = np.random.default_rng(seed)
    return RegionBlock(
        item_ids=np.arange(1, n + 1),
        x=rng.normal(size=(n, p)),
        y=rng.normal(size=n),
        weights=rng.uniform(0.5, 2.0, size=n) if weighted else None,
    )


@pytest.fixture()
def blocks():
    return {
        Region(("a",)): _block(7, seed=1),
        Region(("b",)): _block(5, seed=2, weighted=True),
        Region(("c",)): _block(3, seed=3),
    }


@pytest.fixture()
def columnar(blocks, tmp_path):
    return ColumnarStore.create(tmp_path / "col", blocks, ("f0", "f1", "f2"))


class TestRoundTrip:
    def test_bit_for_bit_vs_source_blocks(self, columnar, blocks):
        for region, src in blocks.items():
            got = columnar.read(region)
            assert np.array_equal(got.item_ids, src.item_ids)
            assert np.array_equal(got.x, src.x)
            assert np.array_equal(got.y, src.y)
            if src.weights is None:
                assert got.weights is None
            else:
                assert np.array_equal(got.weights, src.weights)

    def test_bit_for_bit_vs_npz_backend(self, blocks, tmp_path):
        names = ("f0", "f1", "f2")
        col = ColumnarStore.create(tmp_path / "c", blocks, names)
        npz = DiskStore.create(tmp_path / "n", blocks, names)
        assert col.feature_names == npz.feature_names
        assert set(col.regions()) == set(npz.regions())
        for region in npz.regions():
            a, b = col.read(region), npz.read(region)
            assert np.array_equal(a.x, b.x)
            assert np.array_equal(a.y, b.y)
            assert np.array_equal(a.item_ids, b.item_ids)

    def test_reopen_preserves_everything(self, columnar, blocks, tmp_path):
        reopened = ColumnarStore(tmp_path / "col")
        assert reopened.feature_names == columnar.feature_names
        assert reopened.version == 0
        for region, src in blocks.items():
            assert np.array_equal(reopened.read(region).x, src.x)

    def test_unknown_region(self, columnar):
        with pytest.raises(StorageError):
            columnar.read(Region(("ghost",)))

    def test_n_examples_total_without_block_reads(self, columnar):
        before = columnar.stats.region_reads
        assert columnar.n_examples_total == 7 + 5 + 3
        assert columnar.stats.region_reads == before


class TestWriter:
    def test_streaming_writer(self, blocks, tmp_path):
        with ColumnarStore.writer(tmp_path / "w", ("f0", "f1", "f2")) as w:
            for region, block in blocks.items():
                w.add(region, block)
        assert w.store.n_examples_total == 15

    def test_duplicate_region_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="duplicate"):
            with ColumnarStore.writer(tmp_path / "w", ("f0",)) as w:
                w.add(Region(("a",)), _block(3, p=1))
                w.add(Region(("a",)), _block(3, p=1))

    def test_feature_count_mismatch_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            with ColumnarStore.writer(tmp_path / "w", ("f0", "f1")) as w:
                w.add(Region(("a",)), _block(3, p=3))

    def test_aborted_writer_leaves_no_manifest(self, tmp_path):
        try:
            with ColumnarStore.writer(tmp_path / "w", ("f0",)) as w:
                w.add(Region(("a",)), _block(3, p=1))
                raise RuntimeError("simulated crash")
        except RuntimeError:
            pass
        assert not (tmp_path / "w" / ColumnarStore.MANIFEST).exists()

    def test_unknown_codec_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            ColumnarStore.writer(tmp_path / "w", ("f0",), codec="zstd")

    def test_parquet_codec_gated_without_pyarrow(self, tmp_path):
        try:
            import pyarrow  # noqa: F401
        except ImportError:
            pass
        else:
            pytest.skip("pyarrow installed; the ConfigError gate is unreachable")
        with pytest.raises(ConfigError, match="repro\\[columnar\\]"):
            ColumnarStore.writer(tmp_path / "w", ("f0",), codec="parquet")


class TestChunkedScan:
    def test_chunks_are_bounded_and_complete(self, columnar, blocks):
        seen: dict[Region, list[RegionBlock]] = {}
        for region, chunk in columnar.scan_chunks(chunk_rows=3):
            assert chunk.n_examples <= 3
            seen.setdefault(region, []).append(chunk)
        for region, src in blocks.items():
            x = np.concatenate([c.x for c in seen[region]])
            y = np.concatenate([c.y for c in seen[region]])
            assert np.array_equal(x, src.x)
            assert np.array_equal(y, src.y)

    def test_scan_counters(self, columnar):
        registry = get_registry()
        before = registry.counter_values()
        scans0 = columnar.stats.full_scans
        reads0 = columnar.stats.region_reads
        chunks = sum(1 for __ in columnar.scan_chunks(chunk_rows=2))
        after = registry.counter_values()
        # ceil(7/2) + ceil(5/2) + ceil(3/2) chunks
        assert chunks == 4 + 3 + 2
        assert columnar.stats.full_scans == scans0 + 1
        assert columnar.stats.region_reads == reads0
        delta = after.get("store.columnar.chunks_read", 0) - before.get(
            "store.columnar.chunks_read", 0
        )
        assert delta == chunks

    def test_chunk_rows_validated(self, columnar):
        with pytest.raises(ConfigError):
            list(columnar.scan_chunks(chunk_rows=0))

    def test_plain_scan_still_works(self, columnar, blocks):
        scanned = dict(columnar.scan())
        assert set(scanned) == set(blocks)
        for region, src in blocks.items():
            assert np.array_equal(scanned[region].x, src.x)


class TestDeltas:
    def test_apply_delta_matches_memory_store(self, blocks, tmp_path):
        names = ("f0", "f1", "f2")
        col = ColumnarStore.create(tmp_path / "c", blocks, names)
        mem = MemoryStore(dict(blocks), names)
        appended = RegionBlock(
            item_ids=np.arange(101, 105),
            x=np.random.default_rng(9).normal(size=(4, 3)),
            y=np.random.default_rng(9).normal(size=4),
        )
        delta = StoreDelta(
            blocks={
                # append + retract in an existing region
                Region(("a",)): BlockDelta(
                    append=appended, retract_ids=np.array([2, 4])
                ),
                # a brand-new region
                Region(("d",)): BlockDelta(append=_block(6, seed=10)),
            },
            drop_regions=(Region(("c",)),),
        )
        col.apply_delta(delta)
        mem.apply_delta(delta)
        assert col.version == mem.version == 1
        assert set(col.regions()) == set(mem.regions())
        for region in mem.regions():
            a, b = col.read(region), mem.read(region)
            assert np.array_equal(a.x, b.x)
            assert np.array_equal(a.y, b.y)
            assert np.array_equal(a.item_ids, b.item_ids)

    def test_version_survives_reopen(self, blocks, tmp_path):
        col = ColumnarStore.create(tmp_path / "c", blocks, ("f0", "f1", "f2"))
        col.apply_delta(
            StoreDelta(blocks={Region(("z",)): BlockDelta(append=_block(2, seed=5))})
        )
        assert ColumnarStore(tmp_path / "c").version == 1

    def test_dropped_region_file_removed(self, blocks, tmp_path):
        col = ColumnarStore.create(tmp_path / "c", blocks, ("f0", "f1", "f2"))
        n_files_before = len(list((tmp_path / "c").glob("region_*")))
        col.apply_delta(StoreDelta(blocks={}, drop_regions=(Region(("b",)),)))
        assert len(list((tmp_path / "c").glob("region_*"))) == n_files_before - 1
        with pytest.raises(StorageError):
            col.read(Region(("b",)))


class TestOpenStore:
    def test_sniffs_columnar(self, columnar, tmp_path):
        assert isinstance(open_store(tmp_path / "col"), ColumnarStore)

    def test_sniffs_npz(self, blocks, tmp_path):
        DiskStore.create(tmp_path / "n", blocks, ("f0", "f1", "f2"))
        assert isinstance(open_store(tmp_path / "n"), DiskStore)

    def test_neither_backend_raises(self, tmp_path):
        with pytest.raises(StorageError, match="no npz or columnar manifest"):
            open_store(tmp_path)


class TestBackendSwitch:
    def test_create_dispatches_to_columnar(self, blocks, tmp_path):
        store = DiskStore.create(
            tmp_path / "s", blocks, ("f0", "f1", "f2"), backend="columnar"
        )
        assert isinstance(store, ColumnarStore)

    def test_create_rejects_unknown_backend(self, blocks, tmp_path):
        with pytest.raises(StorageError, match="unknown storage backend"):
            DiskStore.create(tmp_path / "s", blocks, ("f0", "f1", "f2"),
                             backend="tape")

    def test_from_memory_backend_switch(self, blocks, tmp_path):
        mem = MemoryStore(dict(blocks), ("f0", "f1", "f2"))
        store = DiskStore.from_memory(tmp_path / "s", mem, backend="columnar")
        assert isinstance(store, ColumnarStore)
        for region in mem.regions():
            assert np.array_equal(store.read(region).x, mem.read(region).x)


class TestFaults:
    def test_corrupt_manifest(self, columnar, tmp_path):
        (tmp_path / "col" / ColumnarStore.MANIFEST).write_text("{not json")
        with pytest.raises(StorageError):
            ColumnarStore(tmp_path / "col")

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError):
            ColumnarStore(tmp_path / "nowhere")

    def test_wrong_format_tag(self, columnar, tmp_path):
        path = tmp_path / "col" / ColumnarStore.MANIFEST
        meta = json.loads(path.read_text())
        meta["format"] = "something-else"
        path.write_text(json.dumps(meta))
        with pytest.raises(StorageError):
            ColumnarStore(tmp_path / "col")

    def test_missing_column_file(self, columnar, tmp_path):
        region = columnar.regions()[0]
        (tmp_path / "col" / columnar._meta[region]["file"]).unlink()
        with pytest.raises(StorageError):
            columnar.read(region)

    def test_truncated_column_file(self, columnar, tmp_path):
        region = columnar.regions()[0]
        path = tmp_path / "col" / columnar._meta[region]["file"]
        path.write_bytes(path.read_bytes()[:8])
        with pytest.raises(StorageError):
            columnar.read(region)


class TestAtomicManifests:
    """A torn manifest write must never corrupt the previous manifest."""

    def test_columnar_manifest_survives_failed_replace(
        self, blocks, tmp_path, monkeypatch
    ):
        col = ColumnarStore.create(tmp_path / "c", blocks, ("f0", "f1", "f2"))
        manifest = tmp_path / "c" / ColumnarStore.MANIFEST
        good = manifest.read_bytes()

        def torn_replace(src, dst):
            raise OSError("simulated crash between write and rename")

        import repro.storage.block_store as block_store_mod

        monkeypatch.setattr(block_store_mod.os, "replace", torn_replace)
        with pytest.raises(OSError):
            col.apply_delta(
                StoreDelta(
                    blocks={Region(("new",)): BlockDelta(append=_block(2, seed=7))}
                )
            )
        monkeypatch.undo()
        assert manifest.read_bytes() == good
        reopened = ColumnarStore(tmp_path / "c")
        assert reopened.version == 0
        assert set(reopened.regions()) == set(blocks)

    def test_npz_manifest_survives_failed_replace(
        self, blocks, tmp_path, monkeypatch
    ):
        disk = DiskStore.create(tmp_path / "n", blocks, ("f0", "f1", "f2"))
        manifest = tmp_path / "n" / DiskStore._MANIFEST
        good = manifest.read_bytes()

        import repro.storage.block_store as block_store_mod

        def torn_replace(src, dst):
            raise OSError("simulated crash between write and rename")

        monkeypatch.setattr(block_store_mod.os, "replace", torn_replace)
        with pytest.raises(OSError):
            disk.apply_delta(
                StoreDelta(
                    blocks={Region(("new",)): BlockDelta(append=_block(2, seed=7))}
                )
            )
        monkeypatch.undo()
        assert manifest.read_bytes() == good
        reopened = DiskStore(tmp_path / "n")
        assert reopened.version == 0
        assert set(reopened.regions()) == set(blocks)
