"""Tests for training-data stores and I/O accounting."""

import numpy as np
import pytest

from repro.dimensions import Region
from repro.storage import (
    DiskStore,
    FilteredStore,
    IOStats,
    MemoryStore,
    RegionBlock,
    StorageError,
)


def _block(n: int, p: int = 2, seed: int = 0) -> RegionBlock:
    rng = np.random.default_rng(seed)
    return RegionBlock(
        item_ids=np.arange(1, n + 1),
        x=rng.normal(size=(n, p)),
        y=rng.normal(size=n),
    )


@pytest.fixture()
def regions():
    return [Region(("r0",)), Region(("r1",)), Region(("r2",))]


@pytest.fixture()
def memory_store(regions):
    blocks = {r: _block(5 + k, seed=k) for k, r in enumerate(regions)}
    return MemoryStore(blocks, feature_names=("f0", "f1"))


class TestRegionBlock:
    def test_shapes_validated(self):
        with pytest.raises(StorageError):
            RegionBlock(np.arange(3), np.zeros((2, 2)), np.zeros(3))

    def test_restrict_to(self):
        block = _block(5)
        sub = block.restrict_to(np.array([2, 4]))
        assert list(sub.item_ids) == [2, 4]
        assert sub.x.shape == (2, 2)

    def test_restrict_to_missing_ids(self):
        block = _block(3)
        sub = block.restrict_to(np.array([99]))
        assert sub.n_examples == 0

    def test_nbytes_positive(self):
        assert _block(3).nbytes > 0


class TestMemoryStore:
    def test_read_counts_io(self, memory_store, regions):
        memory_store.read(regions[0])
        memory_store.read(regions[1])
        assert memory_store.stats.region_reads == 2
        assert memory_store.stats.bytes_read > 0

    def test_scan_counts_one_full_scan(self, memory_store):
        list(memory_store.scan())
        list(memory_store.scan())
        assert memory_store.stats.full_scans == 2

    def test_unknown_region(self, memory_store):
        with pytest.raises(StorageError):
            memory_store.read(Region(("nope",)))

    def test_feature_count_validated(self, regions):
        with pytest.raises(StorageError):
            MemoryStore({regions[0]: _block(3, p=2)}, feature_names=("only-one",))

    def test_total_examples(self, memory_store):
        assert memory_store.n_examples_total == 5 + 6 + 7


class TestDiskStore:
    def test_roundtrip(self, memory_store, tmp_path):
        disk = DiskStore.from_memory(tmp_path / "store", memory_store)
        assert set(disk.regions()) == set(memory_store.regions())
        for region in memory_store.regions():
            a = memory_store._fetch(region)
            b = disk._fetch(region)
            assert np.allclose(a.x, b.x)
            assert np.allclose(a.y, b.y)
            assert list(a.item_ids) == list(b.item_ids)

    def test_read_hits_disk_every_time(self, memory_store, tmp_path):
        disk = DiskStore.from_memory(tmp_path / "store", memory_store)
        region = disk.regions()[0]
        disk.read(region)
        disk.read(region)
        assert disk.stats.region_reads == 2

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(StorageError):
            DiskStore(tmp_path)

    def test_feature_names_preserved(self, memory_store, tmp_path):
        disk = DiskStore.from_memory(tmp_path / "store", memory_store)
        assert disk.feature_names == memory_store.feature_names


class TestFilteredStore:
    def test_restricts_regions(self, memory_store, regions):
        view = FilteredStore(memory_store, regions[:2])
        assert set(view.regions()) == set(regions[:2])
        with pytest.raises(StorageError):
            view.read(regions[2])

    def test_unknown_region_rejected_at_construction(self, memory_store):
        with pytest.raises(StorageError):
            FilteredStore(memory_store, [Region(("ghost",))])

    def test_own_io_stats(self, memory_store, regions):
        view = FilteredStore(memory_store, regions[:2])
        view.read(regions[0])
        list(view.scan())
        assert view.stats.region_reads == 1
        assert view.stats.full_scans == 1
        assert memory_store.stats.region_reads == 0


class TestIOStats:
    def test_reset_and_snapshot(self):
        stats = IOStats()
        stats.record_region_read(100)
        stats.record_full_scan()
        snap = stats.snapshot()
        stats.reset()
        assert stats.region_reads == 0 and stats.full_scans == 0
        assert snap.region_reads == 1 and snap.bytes_read == 100
