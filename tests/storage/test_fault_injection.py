"""Fault injection: broken files must fail loudly, never return wrong numbers.

Truncated, garbled, or missing ``.npz`` blocks and corrupt manifests raise
:class:`StorageError` (never a raw ``OSError``/``BadZipFile``); a suffstats
cache written against another store version raises
:class:`StaleCacheError`, and a maintainer facing either problem rebuilds
from a full scan instead of serving stale statistics.
"""

import pickle

import numpy as np
import pytest

from repro.dimensions import Region
from repro.incremental import StaleCacheError, SuffStatsCache
from repro.ml import LinearSuffStats, StackedSuffStats, add_intercept
from repro.storage import DiskStore, RegionBlock, StorageError


def _block(n: int, p: int = 2, seed: int = 0) -> RegionBlock:
    rng = np.random.default_rng(seed)
    return RegionBlock(
        np.arange(n), rng.normal(size=(n, p)), rng.normal(size=n)
    )


@pytest.fixture
def disk_store(tmp_path):
    blocks = {
        Region(("a",)): _block(8, seed=1),
        Region(("b",)): _block(6, seed=2),
    }
    return DiskStore.create(tmp_path / "store", blocks, ("f0", "f1"))


def _block_path(store: DiskStore, region: Region):
    return store._dir / store._files[region]


class TestBrokenBlocks:
    def test_truncated_block_raises_storage_error(self, disk_store):
        region = disk_store.regions()[0]
        path = _block_path(disk_store, region)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(StorageError, match="unreadable block"):
            disk_store.read(region)

    def test_garbage_block_raises_storage_error(self, disk_store):
        region = disk_store.regions()[1]
        _block_path(disk_store, region).write_bytes(b"not an npz at all")
        with pytest.raises(StorageError, match="unreadable block"):
            disk_store.read(region)

    def test_missing_block_raises_storage_error(self, disk_store):
        region = disk_store.regions()[0]
        _block_path(disk_store, region).unlink()
        with pytest.raises(StorageError, match="unreadable block"):
            disk_store.read(region)

    def test_scan_surfaces_broken_block(self, disk_store):
        region = disk_store.regions()[1]
        _block_path(disk_store, region).write_bytes(b"junk")
        with pytest.raises(StorageError):
            list(disk_store.scan())

    def test_block_missing_required_array(self, disk_store, tmp_path):
        region = disk_store.regions()[0]
        np.savez(_block_path(disk_store, region), item_ids=np.arange(3))
        with pytest.raises(StorageError, match="unreadable block"):
            disk_store.read(region)


class TestBrokenManifest:
    def test_corrupt_manifest_raises_storage_error(self, disk_store):
        (disk_store._dir / DiskStore._MANIFEST).write_bytes(b"\x80garbage")
        with pytest.raises(StorageError, match="corrupt manifest"):
            DiskStore(disk_store._dir)

    def test_missing_manifest_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError, match="no manifest"):
            DiskStore(tmp_path / "nowhere")

    def test_wrong_shape_manifest_raises_storage_error(self, disk_store):
        with (disk_store._dir / DiskStore._MANIFEST).open("wb") as f:
            pickle.dump(["not", "a", "dict"], f)
        with pytest.raises(StorageError, match="corrupt manifest"):
            DiskStore(disk_store._dir)


def _stacks(n_cells: int = 3, p: int = 3) -> dict[Region, StackedSuffStats]:
    rng = np.random.default_rng(0)
    x = add_intercept(rng.normal(size=(10, p - 1)))
    y = rng.normal(size=10)
    stats = [LinearSuffStats.from_data(x, y) for __ in range(n_cells)]
    return {Region(("a",)): StackedSuffStats.from_stats(stats)}


class TestSuffStatsCacheFaults:
    def test_stale_version_raises_stale_cache_error(self, tmp_path):
        cache = SuffStatsCache(tmp_path)
        cache.save(version=3, stacks=_stacks(), n_cells=3, p=3)
        with pytest.raises(StaleCacheError, match="store version 3"):
            cache.load(expected_version=7, n_cells=3, p=3)

    def test_stale_is_a_storage_error(self):
        assert issubclass(StaleCacheError, StorageError)

    def test_geometry_mismatch_raises_stale_cache_error(self, tmp_path):
        cache = SuffStatsCache(tmp_path)
        cache.save(version=1, stacks=_stacks(), n_cells=3, p=3)
        with pytest.raises(StaleCacheError, match="lattice geometry"):
            cache.load(expected_version=1, n_cells=5, p=3)

    def test_missing_cache_raises_storage_error(self, tmp_path):
        with pytest.raises(StorageError, match="no suffstats cache"):
            SuffStatsCache(tmp_path).load(expected_version=0, n_cells=3, p=3)

    def test_corrupt_meta_raises_storage_error(self, tmp_path):
        cache = SuffStatsCache(tmp_path)
        cache.save(version=1, stacks=_stacks(), n_cells=3, p=3)
        cache.meta_path.write_bytes(b"\x00broken")
        with pytest.raises(StorageError, match="corrupt suffstats-cache"):
            cache.load(expected_version=1, n_cells=3, p=3)

    def test_corrupt_data_raises_storage_error(self, tmp_path):
        cache = SuffStatsCache(tmp_path)
        cache.save(version=1, stacks=_stacks(), n_cells=3, p=3)
        cache.data_path.write_bytes(b"nope")
        with pytest.raises(StorageError, match="unreadable suffstats cache"):
            cache.load(expected_version=1, n_cells=3, p=3)

    def test_truncated_data_raises_storage_error(self, tmp_path):
        cache = SuffStatsCache(tmp_path)
        cache.save(version=1, stacks=_stacks(), n_cells=3, p=3)
        cache.data_path.write_bytes(cache.data_path.read_bytes()[:30])
        with pytest.raises(StorageError):
            cache.load(expected_version=1, n_cells=3, p=3)


class TestMaintainerRebuildsOnBrokenCache:
    """A maintainer facing a stale or corrupt cache rebuilds from a scan."""

    @pytest.fixture
    def setup(self, tmp_path):
        from repro.core import BellwetherCubeBuilder
        from repro.datasets import make_mailorder
        from repro.ml import TrainingSetEstimator

        ds = make_mailorder(
            n_items=60, n_months=6, seed=0,
            error_estimator=TrainingSetEstimator(),
        )
        from repro.core.training_data import build_store

        store, __, __ = build_store(ds.task)
        builder = BellwetherCubeBuilder(ds.task, store, ds.hierarchies)
        return ds, store, builder, tmp_path / "cache"

    def test_stale_cache_triggers_scan_rebuild(self, setup):
        from repro.core import BellwetherCubeBuilder
        from repro.obs import get_registry

        ds, store, builder, cache_dir = setup
        builder.incremental(cache_dir=cache_dir).refresh()
        # Invalidate: pretend the cache was written at another version.
        cache = SuffStatsCache(cache_dir)
        stacks = cache.load(store.version, len(builder._cells),
                            len(store.feature_names) + 1)
        cache.save(store.version + 5, stacks, len(builder._cells),
                   len(store.feature_names) + 1)
        registry = get_registry()
        before = registry.counter_values()
        fresh_builder = BellwetherCubeBuilder(ds.task, store, ds.hierarchies)
        result = fresh_builder.incremental(cache_dir=cache_dir).refresh()
        delta = registry.counter_values()
        assert delta.get("incr.cache_misses", 0) - before.get("incr.cache_misses", 0) == 1
        assert delta.get("store.full_scans", 0) - before.get("store.full_scans", 0) == 1
        scratch = fresh_builder.build("optimized")
        for subset in result.subsets:
            assert result.entry(subset).region == scratch.entry(subset).region

    def test_corrupt_cache_triggers_scan_rebuild(self, setup):
        from repro.core import BellwetherCubeBuilder
        from repro.obs import get_registry

        ds, store, builder, cache_dir = setup
        builder.incremental(cache_dir=cache_dir).refresh()
        SuffStatsCache(cache_dir).data_path.write_bytes(b"garbage")
        registry = get_registry()
        before = registry.counter_values()
        result = (
            BellwetherCubeBuilder(ds.task, store, ds.hierarchies)
            .incremental(cache_dir=cache_dir)
            .refresh()
        )
        delta = registry.counter_values()
        assert delta.get("incr.cache_misses", 0) - before.get("incr.cache_misses", 0) == 1
        assert delta.get("store.full_scans", 0) - before.get("store.full_scans", 0) == 1
        assert len(result.subsets) > 0
