"""npz and columnar backends are interchangeable, bit for bit.

The same training data written through either backend must round-trip to
identical arrays, and every algorithm downstream — the bellwether cube, the
RF tree, the basic search — must produce *exactly* the same answers
(``EXACT`` tolerance, not approximate), because both backends feed the same
floats to the same deterministic kernels.
"""

import numpy as np
import pytest

from repro.core import (
    BasicBellwetherSearch,
    BellwetherCubeBuilder,
    BellwetherTreeBuilder,
)
from repro.core.training_data import build_store
from repro.datasets import make_mailorder
from repro.ml import TrainingSetEstimator
from repro.storage import ColumnarStore, DiskStore
from repro.verify import (
    EXACT,
    assert_same_cube,
    assert_same_store,
    assert_same_tree,
    diff_profiles,
)


@pytest.fixture(scope="module")
def dataset():
    return make_mailorder(
        n_items=60, n_months=6, seed=0, error_estimator=TrainingSetEstimator()
    )


@pytest.fixture(scope="module")
def stores(dataset, tmp_path_factory):
    base = tmp_path_factory.mktemp("backends")
    mem, __, __ = build_store(dataset.task)
    npz = DiskStore.from_memory(base / "npz", mem, backend="npz")
    col = DiskStore.from_memory(base / "col", mem, backend="columnar")
    assert isinstance(col, ColumnarStore)
    return mem, npz, col


class TestStoreEquivalence:
    def test_stores_identical(self, stores):
        mem, npz, col = stores
        assert_same_store(mem, npz, tol=EXACT)
        assert_same_store(mem, col, tol=EXACT)

    def test_scan_order_matches(self, stores):
        __, npz, col = stores
        assert [r for r, __b in npz.scan()] == [r for r, __b in col.scan()]

    def test_raw_bytes_round_trip(self, stores):
        __, npz, col = stores
        for region in npz.regions():
            a, b = npz.read(region), col.read(region)
            assert a.x.tobytes() == b.x.tobytes()
            assert a.y.tobytes() == b.y.tobytes()


class TestAlgorithmEquivalence:
    """The fig7/fig9 pipelines give bit-identical answers on both backends."""

    def test_cube_exact(self, dataset, stores):
        __, npz, col = stores
        cube_npz = BellwetherCubeBuilder(
            dataset.task, npz, dataset.hierarchies
        ).build("optimized")
        cube_col = BellwetherCubeBuilder(
            dataset.task, col, dataset.hierarchies
        ).build("optimized")
        assert_same_cube(cube_npz, cube_col, tol=EXACT)

    def test_tree_exact(self, dataset, stores):
        __, npz, col = stores

        def tree(store):
            return BellwetherTreeBuilder(
                dataset.task,
                store,
                split_attrs=dataset.task.item_feature_attrs,
                min_items=20,
                max_depth=2,
            ).build("rf")

        assert_same_tree(tree(npz).root, tree(col).root)

    def test_basic_search_profile_exact(self, dataset, stores):
        __, npz, col = stores
        prof_npz = BasicBellwetherSearch(dataset.task, npz).evaluate_all()
        prof_col = BasicBellwetherSearch(dataset.task, col).evaluate_all()
        assert diff_profiles(prof_npz, prof_col, tol=EXACT) == []
        assert np.array_equal(
            [r.rmse for r in prof_npz], [r.rmse for r in prof_col]
        )
