"""Materialized suffstats cube tables: warm builds, staleness, incrementality.

The contract under test (ISSUE 7's tentpole): ``build_cube_tables`` persists
per-level :class:`~repro.storage.LevelTable` sets keyed on the store version
and the builder's lattice geometry; ``build_from_tables`` replays them into
a cube **bit-for-bit equal** to ``build("optimized")`` without touching a
single fact row; stale tables (version bump, different geometry) are
detected, and a version bump is patched forward through the store changelog
instead of rescanning.
"""

import numpy as np
import pytest

from repro.core import BasicBellwetherSearch, BellwetherCubeBuilder
from repro.core.exceptions import TaskError
from repro.core.training_data import build_store
from repro.datasets import make_mailorder
from repro.incremental import build_cube_tables
from repro.ml import TrainingSetEstimator
from repro.obs import get_registry
from repro.storage import (
    BlockDelta,
    CubeTableStore,
    RegionBlock,
    StaleCacheError,
    StorageError,
    StoreDelta,
)
from repro.verify import APPROX, EXACT, assert_same_cube, diff_profiles


@pytest.fixture()
def setup(tmp_path):
    ds = make_mailorder(
        n_items=60, n_months=6, seed=0, error_estimator=TrainingSetEstimator()
    )
    store, __, __ = build_store(ds.task)
    builder = BellwetherCubeBuilder(ds.task, store, ds.hierarchies)
    return ds, store, builder, tmp_path / "tables"


def _append_delta(store, n_rows: int = 5) -> StoreDelta:
    """Extra observations for existing items in the store's first region."""
    region = store.regions()[0]
    block = store.read(region)
    rng = np.random.default_rng(42)
    append = RegionBlock(
        item_ids=block.item_ids[:n_rows].copy(),
        x=rng.normal(size=(n_rows, block.x.shape[1])),
        y=rng.normal(size=n_rows),
        weights=None if block.weights is None else np.ones(n_rows),
    )
    return StoreDelta(blocks={region: BlockDelta(append=append)})


class TestWarmBuild:
    def test_tables_reproduce_optimized_cube_exactly(self, setup):
        ds, store, builder, table_dir = setup
        tables = build_cube_tables(builder, table_dir)
        warm = builder.build_from_tables(tables)
        scratch = BellwetherCubeBuilder(
            ds.task, store, ds.hierarchies
        ).build("optimized")
        assert_same_cube(scratch, warm, tol=EXACT)

    def test_second_call_is_a_hit_with_zero_store_io(self, setup):
        __, store, builder, table_dir = setup
        build_cube_tables(builder, table_dir)
        registry = get_registry()
        before = registry.counter_values()
        scans0, reads0 = store.stats.full_scans, store.stats.region_reads
        tables = build_cube_tables(builder, table_dir)
        builder.build_from_tables(tables)
        after = registry.counter_values()
        assert store.stats.full_scans == scans0
        assert store.stats.region_reads == reads0
        assert after.get("cube.tables.hits", 0) - before.get("cube.tables.hits", 0) == 1
        assert after.get("cube.tables.builds", 0) == before.get("cube.tables.builds", 0)

    def test_skip_existing_false_forces_rebuild(self, setup):
        __, __s, builder, table_dir = setup
        build_cube_tables(builder, table_dir)
        before = get_registry().counter_values()
        build_cube_tables(builder, table_dir, skip_existing=False)
        after = get_registry().counter_values()
        assert after.get("cube.tables.builds", 0) - before.get("cube.tables.builds", 0) == 1


class TestStaleness:
    def test_version_bump_patches_without_full_scan(self, setup):
        ds, store, builder, table_dir = setup
        build_cube_tables(builder, table_dir)
        store.apply_delta(_append_delta(store))
        before = get_registry().counter_values()
        scans0 = store.stats.full_scans
        tables = build_cube_tables(builder, table_dir)
        warm = builder.build_from_tables(tables)
        after = get_registry().counter_values()
        # stale tables miss, but the rebuild patches the dirty cells forward
        # through the changelog — no second full scan.
        assert store.stats.full_scans == scans0
        assert after.get("cube.tables.misses", 0) - before.get("cube.tables.misses", 0) == 1
        scratch = BellwetherCubeBuilder(
            ds.task, store, ds.hierarchies
        ).build("optimized")
        assert_same_cube(scratch, warm, tol=EXACT)

    def test_load_rejects_version_mismatch(self, setup):
        __, store, builder, table_dir = setup
        tables = build_cube_tables(builder, table_dir)
        table_store = CubeTableStore(table_dir)
        signature = builder.geometry_signature()
        assert len(table_store.load(signature, store.version)) == len(tables)
        with pytest.raises(StaleCacheError):
            table_store.load(signature, store.version + 3)

    def test_load_rejects_geometry_mismatch(self, setup):
        ds, store, builder, table_dir = setup
        build_cube_tables(builder, table_dir)
        other = BellwetherCubeBuilder(
            ds.task, store, ds.hierarchies, min_subset_size=7
        )
        with pytest.raises(StaleCacheError, match="geometry"):
            CubeTableStore(table_dir).load(
                other.geometry_signature(), store.version
            )

    def test_geometry_mismatch_triggers_rebuild(self, setup):
        ds, store, builder, table_dir = setup
        build_cube_tables(builder, table_dir)
        other = BellwetherCubeBuilder(
            ds.task, store, ds.hierarchies, min_subset_size=7
        )
        before = get_registry().counter_values()
        tables = build_cube_tables(other, table_dir)
        after = get_registry().counter_values()
        assert after.get("cube.tables.misses", 0) - before.get("cube.tables.misses", 0) == 1
        assert_same_cube(
            other.build_from_tables(tables),
            BellwetherCubeBuilder(
                ds.task, store, ds.hierarchies, min_subset_size=7
            ).build("optimized"),
            tol=EXACT,
        )

    def test_missing_tables_raise_storage_error(self, setup, tmp_path):
        __, store, builder, __t = setup
        with pytest.raises(StorageError):
            CubeTableStore(tmp_path / "empty").load(
                builder.geometry_signature(), store.version
            )

    def test_corrupt_meta_raises_storage_error(self, setup):
        __, store, builder, table_dir = setup
        build_cube_tables(builder, table_dir)
        (table_dir / CubeTableStore._META).write_text("{broken")
        with pytest.raises(StorageError):
            CubeTableStore(table_dir).load(
                builder.geometry_signature(), store.version
            )


class TestSearchFromTables:
    def test_profile_matches_evaluate_all(self, setup):
        ds, store, builder, table_dir = setup
        tables = build_cube_tables(builder, table_dir)
        search = BasicBellwetherSearch(ds.task, store)
        oracle = search.evaluate_all()
        candidate = BasicBellwetherSearch(ds.task, store).evaluate_from_tables(
            tables
        )
        assert diff_profiles(oracle, candidate, tol=APPROX) == []

    def test_refresh_cold_path_uses_tables_without_scanning(self, setup):
        ds, store, builder, table_dir = setup
        tables = build_cube_tables(builder, table_dir)
        search = BasicBellwetherSearch(ds.task, store)
        scans0, reads0 = store.stats.full_scans, store.stats.region_reads
        search.refresh(tables=tables)
        assert store.stats.full_scans == scans0
        assert store.stats.region_reads == reads0

    def test_wrong_estimator_rejected(self, setup):
        from repro.core.exceptions import SearchError
        from repro.ml import CrossValidationEstimator

        __, store, builder, table_dir = setup
        tables = build_cube_tables(builder, table_dir)
        cv_ds = make_mailorder(
            n_items=60,
            n_months=6,
            seed=0,
            error_estimator=CrossValidationEstimator(n_folds=3),
        )
        with pytest.raises(SearchError, match="training-set"):
            BasicBellwetherSearch(cv_ds.task, store).evaluate_from_tables(tables)


class TestBuildFromTablesValidation:
    def test_wrong_table_count_rejected(self, setup):
        __, __s, builder, table_dir = setup
        tables = build_cube_tables(builder, table_dir)
        with pytest.raises(TaskError):
            builder.build_from_tables(tables[:-1])

    def test_foreign_geometry_rejected(self, setup):
        ds, store, builder, table_dir = setup
        tables = build_cube_tables(builder, table_dir)
        other = BellwetherCubeBuilder(
            ds.task, store, ds.hierarchies, min_subset_size=7
        )
        with pytest.raises(TaskError):
            other.build_from_tables(tables)
