"""Suite-wide guards.

The conformance harness is only deterministic if every random draw in
``repro.verify`` and ``repro.datasets`` flows through an explicitly seeded
generator.  A static lint fails the whole run the moment someone reaches
for the global ``numpy.random`` state (``np.random.normal(...)``,
``np.random.seed(...)``, ...) in those packages — replayed corpus
artifacts would silently stop pinning anything.
"""

import re
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src" / "repro"
_SEED_CLEAN_PACKAGES = ("verify", "datasets")
# Constructors/types that take or carry an explicit seed are fine; anything
# else on np.random touches the unseeded global state.
_ALLOWED = {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}
_PATTERN = re.compile(r"\bnp\.random\.(\w+)|\bnumpy\.random\.(\w+)")


def _strip_comments(line: str) -> str:
    return line.split("#", 1)[0]


def pytest_sessionstart(session):
    offenders = []
    for package in _SEED_CLEAN_PACKAGES:
        for path in sorted((_SRC / package).rglob("*.py")):
            for lineno, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                for match in _PATTERN.finditer(_strip_comments(line)):
                    name = match.group(1) or match.group(2)
                    if name not in _ALLOWED:
                        offenders.append(
                            f"{path.relative_to(_SRC.parent.parent)}:{lineno}: "
                            f"np.random.{name} uses the unseeded global RNG"
                        )
    if offenders:
        raise pytest.UsageError(
            "seed-clean lint: repro.verify / repro.datasets must draw only "
            "from explicitly seeded generators:\n  " + "\n  ".join(offenders)
        )
