"""Suite-wide guards.

The seed-clean lint that used to live here (a regex over ``repro.verify`` /
``repro.datasets``) is now rule RPR003 of the AST-based invariant linter —
``python -m repro.analysis --rule RPR003`` — which covers all of
``src/repro`` *and* ``tests`` and catches what the regex could not (e.g. an
unseeded ``default_rng()`` call).  ``tests/analysis/test_lint_clean.py``
keeps the pytest failure mode: the suite fails if the tree is not
lint-clean.
"""
