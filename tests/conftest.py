"""Suite-wide guards.

The seed-clean lint that used to live here (a regex over ``repro.verify`` /
``repro.datasets``) is now rule RPR003 of the AST-based invariant linter —
``python -m repro.analysis --rule RPR003`` — which covers all of
``src/repro`` *and* ``tests`` and catches what the regex could not (e.g. an
unseeded ``default_rng()`` call).  ``tests/analysis/test_lint_clean.py``
keeps the pytest failure mode: the suite fails if the tree is not
lint-clean.
"""

import os

import pytest


@pytest.fixture()
def lockcheck():
    """A strict runtime lock checker for the duration of one test.

    Any lock-order inversion, non-reentrant re-acquire, or failed
    ``assert_holds_*`` anywhere in the process raises immediately — the
    hammer tests opt in so their thread storms double as race detectors.
    On teardown the observed lock graph is exported to
    ``$REPRO_LOCKGRAPH_OUT`` when set (the nightly CI failure artifact).
    """
    from repro.analysis.runtime import disable_lockcheck, enable_lockcheck

    checker = enable_lockcheck(strict=True)
    try:
        yield checker
    finally:
        out = os.environ.get("REPRO_LOCKGRAPH_OUT")
        if out:
            checker.export_graph(out)
        disable_lockcheck()
