"""Unit tests for group-by aggregation and the aggregate registry."""

import numpy as np
import pytest

from repro.table import AggregateError, AggregateSpec, Table, group_by, group_codes
from repro.table.groupby import count_rows_per_group, distinct_rows


@pytest.fixture()
def sales() -> Table:
    return Table(
        {
            "region": ["e", "e", "w", "w", "w"],
            "item": [1, 2, 1, 1, 3],
            "amount": [10.0, 20.0, 5.0, 7.0, 9.0],
        }
    )


class TestGroupCodes:
    def test_dense_ids(self, sales):
        gids, groups = group_codes(sales, ["region"])
        assert groups.n_rows == 2
        assert set(gids) == {0, 1}

    def test_multi_key(self, sales):
        gids, groups = group_codes(sales, ["region", "item"])
        assert groups.n_rows == 4  # (e,1),(e,2),(w,1),(w,3)

    def test_group_rows_match_members(self, sales):
        gids, groups = group_codes(sales, ["region", "item"])
        for row_idx in range(sales.n_rows):
            g = gids[row_idx]
            assert groups.column("region")[g] == sales.column("region")[row_idx]
            assert groups.column("item")[g] == sales.column("item")[row_idx]

    def test_empty_keys(self, sales):
        gids, groups = group_codes(sales, [])
        assert set(gids) == {0}


class TestGroupBy:
    def test_sum(self, sales):
        r = group_by(sales, ["region"], [AggregateSpec("sum", "amount")])
        d = dict(zip(r["region"], r["sum_amount"]))
        assert d == {"e": 30.0, "w": 21.0}

    def test_min_max(self, sales):
        r = group_by(
            sales,
            ["region"],
            [AggregateSpec("min", "amount"), AggregateSpec("max", "amount")],
        )
        d = {reg: (lo, hi) for reg, lo, hi in zip(r["region"], r["min_amount"], r["max_amount"])}
        assert d == {"e": (10.0, 20.0), "w": (5.0, 9.0)}

    def test_count(self, sales):
        r = group_by(sales, ["region"], [AggregateSpec("count", "item", alias="n")])
        d = dict(zip(r["region"], r["n"]))
        assert d == {"e": 2, "w": 3}

    def test_avg(self, sales):
        r = group_by(sales, ["region"], [AggregateSpec("avg", "amount")])
        d = dict(zip(r["region"], r["avg_amount"]))
        assert d["e"] == pytest.approx(15.0)
        assert d["w"] == pytest.approx(7.0)

    def test_count_distinct(self, sales):
        r = group_by(sales, ["region"], [AggregateSpec("count_distinct", "item")])
        d = dict(zip(r["region"], r["count_distinct_item"]))
        assert d == {"e": 2, "w": 2}

    def test_count_distinct_strings(self):
        t = Table({"g": [1, 1, 2], "s": ["a", "a", "b"]})
        r = group_by(t, ["g"], [AggregateSpec("count_distinct", "s", alias="n")])
        assert dict(zip(r["g"], r["n"])) == {1: 1, 2: 1}

    def test_whole_table_group(self, sales):
        r = group_by(sales, [], [AggregateSpec("sum", "amount", alias="total")])
        assert r.n_rows == 1
        assert r["total"][0] == pytest.approx(51.0)

    def test_no_aggs_rejected(self, sales):
        with pytest.raises(AggregateError):
            group_by(sales, ["region"], [])

    def test_string_sum_rejected(self, sales):
        with pytest.raises(AggregateError):
            group_by(sales, ["item"], [AggregateSpec("sum", "region")])

    def test_empty_table(self, sales):
        empty = sales.select(np.zeros(5, dtype=bool))
        r = group_by(empty, ["region"], [AggregateSpec("sum", "amount")])
        assert r.n_rows == 0

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(AggregateError):
            AggregateSpec("median", "amount")

    def test_alias_default(self):
        assert AggregateSpec("sum", "x").alias == "sum_x"

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(7)
        n = 500
        t = Table(
            {
                "k1": rng.integers(0, 5, n),
                "k2": rng.integers(0, 4, n),
                "v": rng.normal(size=n),
            }
        )
        r = group_by(
            t,
            ["k1", "k2"],
            [
                AggregateSpec("sum", "v"),
                AggregateSpec("min", "v"),
                AggregateSpec("max", "v"),
                AggregateSpec("count", "v", alias="n"),
            ],
        )
        expected: dict[tuple[int, int], list[float]] = {}
        for k1, k2, v in zip(t["k1"], t["k2"], t["v"]):
            expected.setdefault((k1, k2), []).append(v)
        assert r.n_rows == len(expected)
        for k1, k2, s, lo, hi, n_rows in zip(
            r["k1"], r["k2"], r["sum_v"], r["min_v"], r["max_v"], r["n"]
        ):
            vals = expected[(k1, k2)]
            assert s == pytest.approx(sum(vals))
            assert lo == pytest.approx(min(vals))
            assert hi == pytest.approx(max(vals))
            assert n_rows == len(vals)


class TestHelpers:
    def test_distinct_rows(self):
        t = Table({"a": [1, 1, 2], "b": ["x", "x", "y"]})
        d = distinct_rows(t)
        assert d.n_rows == 2

    def test_distinct_rows_empty(self):
        t = Table({"a": np.empty(0, dtype=np.int64)})
        assert distinct_rows(t).n_rows == 0

    def test_count_rows_per_group(self):
        t = Table({"a": [1, 1, 2], "b": [0.0, 0.0, 0.0]})
        r = count_rows_per_group(t, ["a"])
        assert dict(zip(r["a"], r["n"])) == {1: 2, 2: 1}
