"""Tests for the left outer join."""

import numpy as np
import pytest

from repro.table import JoinError, Table, left_join


@pytest.fixture()
def tables():
    left = Table({"k": [1, 2, 9], "v": [1.0, 2.0, 3.0]})
    right = Table({"k": [1, 2], "w": [10.0, 20.0], "s": ["a", "b"]})
    return left, right


class TestLeftJoin:
    def test_keeps_unmatched_rows(self, tables):
        left, right = tables
        j = left_join(left, right)
        assert j.n_rows == 3
        assert list(j["k"]) == [1, 2, 9]

    def test_fill_values(self, tables):
        left, right = tables
        j = left_join(left, right)
        assert np.isnan(j["w"][2])
        assert j["s"][2] == ""

    def test_custom_fill(self, tables):
        left, right = tables
        j = left_join(left, right, fill=-1.0)
        assert j["w"][2] == -1.0

    def test_matched_rows_agree_with_natural_join(self, tables):
        from repro.table import natural_join

        left, right = tables
        inner = natural_join(left, right)
        outer = left_join(left, right)
        matched = {k: (w, s) for k, w, s in zip(inner["k"], inner["w"], inner["s"])}
        for k, w, s in zip(outer["k"], outer["w"], outer["s"]):
            if k in matched:
                assert (w, s) == matched[k]

    def test_nonunique_right_rejected(self):
        left = Table({"k": [1], "v": [0.0]})
        right = Table({"k": [1, 1], "w": [1.0, 2.0]})
        with pytest.raises(JoinError):
            left_join(left, right)

    def test_empty_right(self):
        left = Table({"k": [1, 2], "v": [0.0, 1.0]})
        right = Table({"k": np.empty(0, dtype=np.int64), "w": np.empty(0)})
        j = left_join(left, right)
        assert j.n_rows == 2
        assert np.isnan(j["w"]).all()
