"""Direct unit tests for Schema and ColumnType."""

import numpy as np
import pytest

from repro.table import ColumnType, Schema, SchemaError
from repro.table.errors import ColumnNotFoundError


class TestColumnType:
    def test_dtypes(self):
        assert ColumnType.INT.dtype == np.dtype(np.int64)
        assert ColumnType.FLOAT.dtype == np.dtype(np.float64)
        assert ColumnType.STR.dtype == np.dtype(object)

    def test_is_numeric(self):
        assert ColumnType.INT.is_numeric
        assert ColumnType.FLOAT.is_numeric
        assert not ColumnType.STR.is_numeric

    def test_from_array(self):
        assert ColumnType.from_array(np.array([1, 2])) is ColumnType.INT
        assert ColumnType.from_array(np.array([1.5])) is ColumnType.FLOAT
        assert ColumnType.from_array(np.array(["a"], dtype=object)) is ColumnType.STR
        assert ColumnType.from_array(np.array([True])) is ColumnType.INT


class TestSchema:
    @pytest.fixture()
    def schema(self) -> Schema:
        return Schema([("a", ColumnType.INT), ("b", ColumnType.STR)])

    def test_names_ordered(self, schema):
        assert schema.names == ("a", "b")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([("a", ColumnType.INT), ("a", ColumnType.STR)])

    def test_mapping_constructor(self):
        schema = Schema({"x": ColumnType.FLOAT})
        assert schema.type_of("x") is ColumnType.FLOAT

    def test_contains_len_iter(self, schema):
        assert "a" in schema and "z" not in schema
        assert len(schema) == 2
        assert dict(schema) == {"a": ColumnType.INT, "b": ColumnType.STR}

    def test_type_of_unknown(self, schema):
        with pytest.raises(ColumnNotFoundError):
            schema.type_of("zzz")

    def test_require(self, schema):
        schema.require("a", "b")
        with pytest.raises(ColumnNotFoundError):
            schema.require("a", "zzz")

    def test_subset_reorders(self, schema):
        sub = schema.subset(["b", "a"])
        assert sub.names == ("b", "a")

    def test_extended(self, schema):
        bigger = schema.extended("c", ColumnType.FLOAT)
        assert bigger.names == ("a", "b", "c")
        assert schema.names == ("a", "b")  # original untouched
        with pytest.raises(SchemaError):
            schema.extended("a", ColumnType.FLOAT)

    def test_equality(self, schema):
        same = Schema([("a", ColumnType.INT), ("b", ColumnType.STR)])
        different = Schema([("a", ColumnType.FLOAT), ("b", ColumnType.STR)])
        assert schema == same
        assert schema != different
        assert (schema == 42) is False or schema.__eq__(42) is NotImplemented

    def test_repr(self, schema):
        assert "a: int" in repr(schema)
