"""Unit tests for star-schema Database and CSV round-trips."""

import numpy as np
import pytest

from repro.table import (
    ColumnType,
    Database,
    JoinError,
    Reference,
    Schema,
    SchemaError,
    Table,
    load_csv,
    save_csv,
)


@pytest.fixture()
def star() -> Database:
    fact = Table(
        {
            "item": [1, 1, 2],
            "ad": [10, 11, 10],
            "profit": [1.0, 2.0, 3.0],
        }
    )
    items = Table({"item": [1, 2], "category": ["a", "b"]})
    ads = Table({"ad": [10, 11], "size": [1.0, 2.0]})
    return Database(fact, [Reference("items", items, "item"), Reference("ads", ads, "ad")])


class TestDatabase:
    def test_join_single_reference(self, star):
        j = star.join_fact("items")
        assert "category" in j
        assert j.n_rows == 3

    def test_join_multiple_references(self, star):
        j = star.join_fact("items", "ads")
        assert "category" in j and "size" in j

    def test_unknown_reference(self, star):
        with pytest.raises(SchemaError):
            star.reference("nope")

    def test_duplicate_reference_rejected(self, star):
        items = Table({"item": [1], "x": [0]})
        with pytest.raises(SchemaError):
            star.add_reference(Reference("items", items, "item"))

    def test_nonunique_reference_key_rejected(self):
        bad = Table({"item": [1, 1], "c": ["a", "b"]})
        with pytest.raises(SchemaError):
            Reference("items", bad, "item")

    def test_integrity_ok(self, star):
        star.check_integrity()  # should not raise

    def test_integrity_dangling_fk(self):
        fact = Table({"item": [1, 99], "profit": [1.0, 2.0]})
        items = Table({"item": [1], "c": ["a"]})
        db = Database(fact, [Reference("items", items, "item")])
        with pytest.raises(JoinError):
            db.check_integrity()


class TestCsv:
    def test_roundtrip(self, tmp_path):
        t = Table(
            {
                "i": [1, 2, 3],
                "f": [1.5, 2.5, -3.0],
                "s": ["a", "b c", "d,e"],
            }
        )
        path = tmp_path / "t.csv"
        save_csv(t, path)
        back = load_csv(path)
        assert back.schema == t.schema
        assert back.to_dict() == t.to_dict()

    def test_roundtrip_empty(self, tmp_path):
        t = Table.empty(Schema([("a", ColumnType.INT), ("b", ColumnType.STR)]))
        path = tmp_path / "e.csv"
        save_csv(t, path)
        back = load_csv(path)
        assert back.n_rows == 0
        assert back.schema == t.schema

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            load_csv(path)

    def test_bad_type_tag_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a\ncomplex\n")
        with pytest.raises(SchemaError):
            load_csv(path)
