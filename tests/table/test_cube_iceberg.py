"""Unit tests for CUBE / ROLLUP / iceberg cube."""

import numpy as np
import pytest

from repro.table import (
    ALL,
    AggregateSpec,
    Table,
    cube,
    iceberg_cube,
    iceberg_distinct_count,
    rollup,
)
from repro.table.errors import AggregateError


@pytest.fixture()
def facts() -> Table:
    return Table(
        {
            "time": ["t1", "t1", "t2", "t2"],
            "loc": ["WI", "MD", "WI", "WI"],
            "item": [1, 2, 1, 3],
            "profit": [1.0, 2.0, 3.0, 4.0],
        }
    )


def _cell(table, **dims):
    """Find the single row matching the given dimension values."""
    mask = np.ones(table.n_rows, dtype=bool)
    for k, v in dims.items():
        mask &= table[k] == v
    idx = np.flatnonzero(mask)
    assert len(idx) == 1, f"expected one cell for {dims}, got {len(idx)}"
    return table.row(idx[0])


class TestCube:
    def test_cell_count(self, facts):
        c = cube(facts, ["time", "loc"], [AggregateSpec("sum", "profit")])
        # base cells: (t1,WI),(t1,MD),(t2,WI) = 3; time-only: 2; loc-only: 2; all: 1
        assert c.n_rows == 8

    def test_grand_total(self, facts):
        c = cube(facts, ["time", "loc"], [AggregateSpec("sum", "profit")])
        assert _cell(c, time=ALL, loc=ALL)["sum_profit"] == pytest.approx(10.0)

    def test_partial_rollup_values(self, facts):
        c = cube(facts, ["time", "loc"], [AggregateSpec("sum", "profit")])
        assert _cell(c, time="t2", loc=ALL)["sum_profit"] == pytest.approx(7.0)
        assert _cell(c, time=ALL, loc="WI")["sum_profit"] == pytest.approx(8.0)

    def test_avg_rolls_up_correctly(self, facts):
        c = cube(facts, ["loc"], [AggregateSpec("avg", "profit")])
        assert _cell(c, loc="WI")["avg_profit"] == pytest.approx(8.0 / 3)
        assert _cell(c, loc=ALL)["avg_profit"] == pytest.approx(2.5)

    def test_min_max_rollup(self, facts):
        c = cube(facts, ["time"], [AggregateSpec("min", "profit"), AggregateSpec("max", "profit")])
        top = _cell(c, time=ALL)
        assert top["min_profit"] == 1.0
        assert top["max_profit"] == 4.0

    def test_include_dims_subset(self, facts):
        c = cube(
            facts,
            ["time", "loc"],
            [AggregateSpec("sum", "profit")],
            include_dims=[("time",)],
        )
        assert set(c["loc"]) == {ALL}
        assert c.n_rows == 2

    def test_include_dims_unknown_rejected(self, facts):
        with pytest.raises(AggregateError):
            cube(facts, ["time"], [AggregateSpec("sum", "profit")], include_dims=[("bogus",)])

    def test_matches_direct_groupby(self, facts):
        """Rolled-up cells merged from base cells == recomputed from raw rows."""
        from repro.table import group_by

        c = cube(facts, ["time", "loc"], [AggregateSpec("sum", "profit")])
        direct = group_by(facts, ["time"], [AggregateSpec("sum", "profit")])
        for t, s in zip(direct["time"], direct["sum_profit"]):
            assert _cell(c, time=str(t), loc=ALL)["sum_profit"] == pytest.approx(s)

    def test_holistic_aggregate_falls_back(self, facts):
        c = cube(facts, ["loc"], [AggregateSpec("count_distinct", "item", alias="n")])
        assert _cell(c, loc=ALL)["n"] == 3
        assert _cell(c, loc="WI")["n"] == 2


class TestRollup:
    def test_prefix_groupings_only(self, facts):
        r = rollup(facts, ["time", "loc"], [AggregateSpec("sum", "profit")])
        # (time,loc): 3 cells, (time): 2, (): 1 -> 6; never loc without time
        assert r.n_rows == 6
        loc_only = (np.asarray([t == ALL for t in r["time"]])
                    & np.asarray([l != ALL for l in r["loc"]]))
        assert not loc_only.any()


class TestIceberg:
    def test_support_threshold(self, facts):
        ice = iceberg_cube(facts, ["time", "loc"], min_count=2)
        supports = dict()
        for i in range(ice.n_rows):
            row = ice.row(i)
            supports[(row["time"], row["loc"])] = row["support"]
        assert (ALL, ALL) in supports and supports[(ALL, ALL)] == 4
        assert ("t2", "WI") in supports
        assert ("t1", "WI") not in supports  # support 1

    def test_extra_aggregates_carried(self, facts):
        ice = iceberg_cube(
            facts, ["loc"], min_count=3, aggs=[AggregateSpec("sum", "profit")]
        )
        cells = {row["loc"]: row for row in (ice.row(i) for i in range(ice.n_rows))}
        assert cells["WI"]["sum_profit"] == pytest.approx(8.0)

    def test_distinct_count_constraint(self, facts):
        cov = iceberg_distinct_count(facts, ["loc"], "item", min_distinct=2)
        cells = {row["loc"]: row["n_distinct"] for row in (cov.row(i) for i in range(cov.n_rows))}
        assert cells[ALL] == 3  # items 1,2,3 — distinct, not row count
        assert cells["WI"] == 2
        assert "MD" not in cells  # only item 2

    def test_threshold_filters_everything(self, facts):
        ice = iceberg_cube(facts, ["time", "loc"], min_count=100)
        assert ice.n_rows == 0
