"""Unit tests for the columnar Table core."""

import numpy as np
import pytest

from repro.table import (
    ColumnNotFoundError,
    ColumnType,
    Eq,
    Schema,
    SchemaError,
    Table,
)


@pytest.fixture()
def orders() -> Table:
    return Table(
        {
            "item": [1, 1, 2, 2, 3],
            "state": ["WI", "MD", "WI", "WI", "MD"],
            "profit": [1.0, 2.0, 3.0, 4.0, 5.0],
        }
    )


class TestConstruction:
    def test_infers_types(self, orders):
        assert orders.schema.type_of("item") is ColumnType.INT
        assert orders.schema.type_of("state") is ColumnType.STR
        assert orders.schema.type_of("profit") is ColumnType.FLOAT

    def test_row_count(self, orders):
        assert orders.n_rows == 5
        assert len(orders) == 5

    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table({"a": [1, 2], "b": [1, 2, 3]})

    def test_2d_column_rejected(self):
        with pytest.raises(SchemaError):
            Table({"a": np.zeros((2, 2))})

    def test_explicit_schema_coerces(self):
        schema = Schema([("x", ColumnType.FLOAT)])
        t = Table({"x": [1, 2, 3]}, schema=schema)
        assert t.column("x").dtype == np.float64

    def test_schema_mismatch_rejected(self):
        schema = Schema([("x", ColumnType.INT), ("y", ColumnType.INT)])
        with pytest.raises(SchemaError):
            Table({"x": [1]}, schema=schema)

    def test_empty_table(self):
        schema = Schema([("a", ColumnType.INT), ("b", ColumnType.STR)])
        t = Table.empty(schema)
        assert t.n_rows == 0
        assert t.column_names == ("a", "b")

    def test_from_rows_roundtrip(self):
        schema = Schema([("a", ColumnType.INT), ("b", ColumnType.STR)])
        t = Table.from_rows([(1, "x"), (2, "y")], schema)
        assert list(t.rows()) == [(1, "x"), (2, "y")]

    def test_from_rows_empty(self):
        schema = Schema([("a", ColumnType.INT)])
        assert Table.from_rows([], schema).n_rows == 0

    def test_from_rows_width_mismatch(self):
        schema = Schema([("a", ColumnType.INT)])
        with pytest.raises(SchemaError):
            Table.from_rows([(1, 2)], schema)


class TestAccess:
    def test_unknown_column(self, orders):
        with pytest.raises(ColumnNotFoundError):
            orders.column("nope")

    def test_getitem(self, orders):
        assert list(orders["item"]) == [1, 1, 2, 2, 3]

    def test_row_dict(self, orders):
        assert orders.row(0) == {"item": 1, "state": "WI", "profit": 1.0}

    def test_contains(self, orders):
        assert "item" in orders
        assert "nope" not in orders


class TestOperations:
    def test_select_predicate(self, orders):
        wi = orders.select(Eq("state", "WI"))
        assert wi.n_rows == 3
        assert set(wi["state"]) == {"WI"}

    def test_select_mask(self, orders):
        t = orders.select(orders["profit"] > 3.0)
        assert list(t["profit"]) == [4.0, 5.0]

    def test_select_bad_mask(self, orders):
        with pytest.raises(SchemaError):
            orders.select(np.array([True, False]))

    def test_take_preserves_order(self, orders):
        t = orders.take(np.array([4, 0]))
        assert list(t["item"]) == [3, 1]

    def test_project(self, orders):
        p = orders.project(["state", "item"])
        assert p.column_names == ("state", "item")

    def test_project_distinct(self, orders):
        p = orders.project(["state"], distinct=True)
        assert sorted(p["state"]) == ["MD", "WI"]

    def test_with_column(self, orders):
        t = orders.with_column("double", orders["profit"] * 2)
        assert list(t["double"]) == [2.0, 4.0, 6.0, 8.0, 10.0]

    def test_with_column_duplicate_rejected(self, orders):
        with pytest.raises(SchemaError):
            orders.with_column("item", [0] * 5)

    def test_with_column_wrong_length(self, orders):
        with pytest.raises(SchemaError):
            orders.with_column("x", [1, 2])

    def test_rename(self, orders):
        t = orders.rename({"item": "id"})
        assert "id" in t and "item" not in t

    def test_rename_collision(self, orders):
        with pytest.raises(SchemaError):
            orders.rename({"item": "state"})

    def test_sort_by(self, orders):
        t = orders.sort_by("state", "profit")
        assert list(t["state"]) == ["MD", "MD", "WI", "WI", "WI"]
        assert list(t["profit"]) == [2.0, 5.0, 1.0, 3.0, 4.0]

    def test_concat(self, orders):
        both = orders.concat(orders)
        assert both.n_rows == 10

    def test_concat_schema_mismatch(self, orders):
        other = Table({"x": [1]})
        with pytest.raises(SchemaError):
            orders.concat(other)

    def test_tables_share_no_visible_state(self, orders):
        selected = orders.select(Eq("state", "MD"))
        assert orders.n_rows == 5
        assert selected.n_rows == 2
