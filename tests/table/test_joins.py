"""Unit tests for natural / inner / semi joins."""

import numpy as np
import pytest

from repro.table import JoinError, Table, inner_join, natural_join, semi_join


@pytest.fixture()
def fact() -> Table:
    return Table(
        {
            "item": [1, 1, 2, 3, 9],
            "ad": [10, 11, 10, 12, 10],
            "profit": [1.0, 2.0, 3.0, 4.0, 5.0],
        }
    )


@pytest.fixture()
def items() -> Table:
    return Table({"item": [1, 2, 3], "category": ["a", "b", "a"]})


@pytest.fixture()
def ads() -> Table:
    return Table({"ad": [10, 11, 12], "size": [100.0, 200.0, 300.0]})


class TestNaturalJoin:
    def test_basic(self, fact, items):
        j = natural_join(fact, items)
        # item 9 has no match and is dropped (inner join)
        assert j.n_rows == 4
        assert list(j["category"]) == ["a", "a", "b", "a"]

    def test_explicit_key(self, fact, ads):
        j = natural_join(fact, ads, on=["ad"])
        assert dict(zip(j["profit"], j["size"])) == {
            1.0: 100.0, 2.0: 200.0, 3.0: 100.0, 4.0: 300.0, 5.0: 100.0,
        }

    def test_string_keys(self):
        left = Table({"k": ["x", "y", "z"], "v": [1, 2, 3]})
        right = Table({"k": ["y", "x"], "w": [20, 10]})
        j = natural_join(left, right)
        assert dict(zip(j["v"], j["w"])) == {1: 10, 2: 20}

    def test_nonunique_right_key_rejected(self, fact):
        dup = Table({"item": [1, 1], "c": ["a", "b"]})
        with pytest.raises(JoinError):
            natural_join(fact, dup)

    def test_no_common_columns_rejected(self, fact):
        other = Table({"zzz": [1]})
        with pytest.raises(JoinError):
            natural_join(fact, other)

    def test_non_key_name_clash_rejected(self, fact):
        other = Table({"item": [1], "profit": [9.0]})
        with pytest.raises(JoinError):
            natural_join(fact, other, on=["item"])

    def test_all_common_columns_are_keys_by_default(self, fact):
        # True natural-join semantics: shared 'profit' joins as a key.
        other = Table({"item": [1], "profit": [1.0]})
        j = natural_join(fact, other)
        assert j.n_rows == 1

    def test_empty_left(self, items):
        empty = Table({"item": np.empty(0, dtype=np.int64)})
        assert natural_join(empty, items).n_rows == 0

    def test_preserves_left_order(self, fact, items):
        j = natural_join(fact, items)
        assert list(j["profit"]) == [1.0, 2.0, 3.0, 4.0]

    def test_multi_column_key(self):
        left = Table({"a": [1, 1, 2], "b": ["x", "y", "x"], "v": [1, 2, 3]})
        right = Table({"a": [1, 2], "b": ["x", "x"], "w": [10, 20]})
        j = natural_join(left, right, on=["a", "b"])
        assert dict(zip(j["v"], j["w"])) == {1: 10, 3: 20}


class TestInnerJoin:
    def test_many_to_many(self):
        left = Table({"k": [1, 1, 2], "v": [10, 11, 12]})
        right = Table({"k": [1, 1, 3], "w": [100, 101, 102]})
        j = inner_join(left, right)
        assert j.n_rows == 4  # 2 left rows x 2 right rows for k=1
        assert set(zip(j["v"], j["w"])) == {(10, 100), (10, 101), (11, 100), (11, 101)}

    def test_no_matches(self):
        left = Table({"k": [1], "v": [0]})
        right = Table({"k": [2], "w": [0]})
        assert inner_join(left, right).n_rows == 0


class TestSemiJoin:
    def test_filters_left(self, fact, items):
        s = semi_join(fact, items)
        assert s.n_rows == 4
        assert 9 not in set(s["item"])

    def test_keeps_schema(self, fact, items):
        s = semi_join(fact, items)
        assert s.column_names == fact.column_names
