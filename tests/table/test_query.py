"""Tests for the fluent query builder."""

import pytest

from repro.table import (
    Between,
    Database,
    Eq,
    Ge,
    Query,
    Reference,
    SchemaError,
    Table,
)


@pytest.fixture()
def orders() -> Table:
    return Table(
        {
            "item": [1, 1, 2, 2, 3],
            "ad": [10, 11, 10, 12, 11],
            "state": ["WI", "MD", "WI", "NY", "MD"],
            "profit": [10.0, 20.0, 30.0, 40.0, 50.0],
        }
    )


@pytest.fixture()
def db(orders) -> Database:
    ads = Table({"ad": [10, 11, 12], "size": [1.0, 2.0, 3.0]})
    return Database(orders, [Reference("ads", ads, "ad")])


class TestBasics:
    def test_where(self, orders):
        assert Query(orders).where(Eq("state", "WI")).count() == 2

    def test_where_chained_is_and(self, orders):
        q = Query(orders).where(Eq("state", "WI")).where(Ge("profit", 20.0))
        assert q.count() == 1

    def test_select(self, orders):
        r = Query(orders).select("state", "profit").run()
        assert r.column_names == ("state", "profit")

    def test_select_distinct(self, orders):
        assert Query(orders).select("item").distinct().count() == 3

    def test_distinct_all_columns(self, orders):
        doubled = orders.concat(orders)
        assert Query(doubled).distinct().count() == orders.n_rows

    def test_order_by(self, orders):
        r = Query(orders).order_by("profit", descending=True).run()
        assert list(r["profit"]) == [50.0, 40.0, 30.0, 20.0, 10.0]

    def test_order_by_multiple(self, orders):
        # SQL semantics: the first order_by is the primary sort key.
        r = Query(orders).order_by("state").order_by("profit").run()
        assert list(r["state"]) == sorted(orders["state"])
        md_profits = [p for s, p in zip(r["state"], r["profit"]) if s == "MD"]
        assert md_profits == sorted(md_profits)

    def test_limit(self, orders):
        assert Query(orders).order_by("profit").limit(2).count() == 2
        with pytest.raises(SchemaError):
            Query(orders).limit(-1)

    def test_limit_beyond_rows(self, orders):
        assert Query(orders).limit(100).count() == 5


class TestAggregation:
    def test_group_agg(self, orders):
        r = (
            Query(orders)
            .group_by("item")
            .agg("sum", "profit", alias="total")
            .run()
        )
        assert dict(zip(r["item"], r["total"])) == {1: 30.0, 2: 70.0, 3: 50.0}

    def test_global_agg(self, orders):
        assert Query(orders).agg("sum", "profit", alias="t").scalar() == 150.0

    def test_group_without_agg_rejected(self, orders):
        with pytest.raises(SchemaError):
            Query(orders).group_by("item").run()

    def test_filter_before_group(self, orders):
        r = (
            Query(orders)
            .where(Between("profit", 20.0, 40.0))
            .group_by("state")
            .agg("count", "profit", alias="n")
            .run()
        )
        assert dict(zip(r["state"], r["n"])) == {"MD": 1, "WI": 1, "NY": 1}

    def test_scalar_requires_1x1(self, orders):
        with pytest.raises(SchemaError):
            Query(orders).scalar()


class TestStarSchema:
    def test_join_by_name(self, db):
        r = Query.over(db).join("ads").run()
        assert "size" in r
        assert r.n_rows == 5

    def test_join_then_aggregate(self, db):
        r = (
            Query.over(db)
            .join("ads")
            .group_by("item")
            .agg("max", "size", alias="max_size")
            .run()
        )
        assert dict(zip(r["item"], r["max_size"])) == {1: 2.0, 2: 3.0, 3: 2.0}

    def test_join_without_db_rejected(self, orders):
        with pytest.raises(SchemaError):
            Query(orders).join("ads")

    def test_unknown_reference_rejected(self, db):
        with pytest.raises(SchemaError):
            Query.over(db).join("ghosts")


class TestImmutability:
    def test_clauses_do_not_mutate(self, orders):
        base = Query(orders)
        filtered = base.where(Eq("state", "WI"))
        assert base.count() == 5
        assert filtered.count() == 2

    def test_shared_prefix_branches(self, orders):
        base = Query(orders).where(Ge("profit", 20.0))
        a = base.group_by("state").agg("count", "profit", alias="n")
        b = base.select("item").distinct()
        assert a.count() == 3
        assert b.count() == 3
