"""Property-based tests on the relational engine's algebraic invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.table import (
    ALL,
    AggregateSpec,
    Table,
    cube,
    group_by,
    natural_join,
)

# A small random table: two low-cardinality key columns + one measure.
keys = st.lists(st.integers(0, 4), min_size=1, max_size=60)


@st.composite
def tables(draw):
    n = draw(st.integers(1, 60))
    k1 = draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))
    k2 = draw(st.lists(st.sampled_from(["a", "b", "c"]), min_size=n, max_size=n))
    v = draw(
        st.lists(
            st.floats(-100, 100, allow_nan=False, allow_infinity=False),
            min_size=n,
            max_size=n,
        )
    )
    return Table({"k1": k1, "k2": k2, "v": v})


@given(tables())
@settings(max_examples=60, deadline=None)
def test_groupby_sum_partitions_total(t):
    """Group sums add up to the grand total (sum is distributive)."""
    r = group_by(t, ["k1", "k2"], [AggregateSpec("sum", "v")])
    assert np.isclose(r["sum_v"].sum(), t["v"].sum(), atol=1e-6)


@given(tables())
@settings(max_examples=60, deadline=None)
def test_groupby_counts_partition_rows(t):
    r = group_by(t, ["k1", "k2"], [AggregateSpec("count", "v", alias="n")])
    assert r["n"].sum() == t.n_rows


@given(tables())
@settings(max_examples=40, deadline=None)
def test_cube_rollup_consistent_with_direct_groupby(t):
    """Every rolled-up cube cell equals a from-scratch group-by."""
    c = cube(t, ["k1", "k2"], [AggregateSpec("sum", "v")])
    direct = group_by(t, ["k1"], [AggregateSpec("sum", "v")])
    cube_k1 = {
        str(row["k1"]): row["sum_v"]
        for row in (c.row(i) for i in range(c.n_rows))
        if row["k2"] == ALL and row["k1"] != ALL
    }
    for k1, s in zip(direct["k1"], direct["sum_v"]):
        assert np.isclose(cube_k1[str(k1)], s, atol=1e-6)


@given(tables())
@settings(max_examples=40, deadline=None)
def test_cube_grand_total_cell(t):
    c = cube(t, ["k1", "k2"], [AggregateSpec("sum", "v")])
    grand = [
        row["sum_v"]
        for row in (c.row(i) for i in range(c.n_rows))
        if row["k1"] == ALL and row["k2"] == ALL
    ]
    assert len(grand) == 1
    assert np.isclose(grand[0], t["v"].sum(), atol=1e-6)


@given(tables())
@settings(max_examples=40, deadline=None)
def test_natural_join_is_lookup(t):
    """Joining on a synthetic unique key reproduces a dictionary lookup."""
    lookup = Table({"k1": [0, 1, 2, 3], "label": ["w", "x", "y", "z"]})
    j = natural_join(t, lookup)
    assert j.n_rows == t.n_rows  # all k1 in 0..3 by construction
    expected = {0: "w", 1: "x", 2: "y", 3: "z"}
    for k1, label in zip(j["k1"], j["label"]):
        assert expected[int(k1)] == label


@given(tables(), tables())
@settings(max_examples=30, deadline=None)
def test_concat_then_groupby_merges(t1, t2):
    """group_by(concat) == merge of group_by results (distributivity)."""
    both = t1.concat(t2)
    r = group_by(both, ["k1"], [AggregateSpec("sum", "v")])
    partial: dict[int, float] = {}
    for part in (t1, t2):
        rp = group_by(part, ["k1"], [AggregateSpec("sum", "v")])
        for k, s in zip(rp["k1"], rp["sum_v"]):
            partial[int(k)] = partial.get(int(k), 0.0) + float(s)
    merged = dict(zip((int(k) for k in r["k1"]), r["sum_v"]))
    assert set(merged) == set(partial)
    for k in merged:
        assert np.isclose(merged[k], partial[k], atol=1e-6)
