"""Unit tests for interval dimensions, regions and region spaces."""

import numpy as np
import pytest

from repro.dimensions import (
    HierarchicalDimension,
    Interval,
    IntervalDimension,
    Region,
    RegionError,
    RegionSpace,
)
from repro.table import Table


@pytest.fixture()
def time() -> IntervalDimension:
    return IntervalDimension("month", 10, unit="month")


@pytest.fixture()
def loc() -> HierarchicalDimension:
    return HierarchicalDimension.from_spec(
        "state",
        {"MW": ["WI", "IL"], "NE": ["NY", "MD"]},
        level_names=("All", "Division", "State"),
    )


@pytest.fixture()
def space(time, loc) -> RegionSpace:
    return RegionSpace([time, loc])


class TestInterval:
    def test_valid(self):
        iv = Interval(1, 5)
        assert iv.length == 5
        assert str(iv) == "1-5"

    def test_invalid(self):
        with pytest.raises(RegionError):
            Interval(0, 5)
        with pytest.raises(RegionError):
            Interval(3, 2)

    def test_contains_point(self):
        iv = Interval(1, 3)
        assert iv.contains_point(1) and iv.contains_point(3)
        assert not iv.contains_point(4)

    def test_dimension_enumeration(self, time):
        ivs = time.intervals()
        assert len(ivs) == 10
        assert ivs[0] == Interval(1, 1)
        assert ivs[-1] == Interval(1, 10)

    def test_prefix_bounds(self, time):
        with pytest.raises(RegionError):
            time.interval(0)
        with pytest.raises(RegionError):
            time.interval(11)

    def test_membership_mask(self, time):
        points = np.array([1, 5, 9])
        assert list(time.membership_mask(points, Interval(1, 5))) == [True, True, False]

    def test_validate_points(self, time):
        time.validate_points(np.array([1, 10]))
        with pytest.raises(RegionError):
            time.validate_points(np.array([0]))

    def test_bad_n_points(self):
        with pytest.raises(RegionError):
            IntervalDimension("t", 0)


class TestRegionSpace:
    def test_region_count(self, space):
        # 10 prefixes x (4 states + 2 divisions + All) = 70
        assert space.n_regions == 70
        assert len(space.all_regions()) == 70

    def test_iter_matches_all(self, space):
        assert list(space.iter_regions()) == space.all_regions()

    def test_region_constructor_int_shortcut(self, space):
        r = space.region(8, "MD")
        assert r.values == (Interval(1, 8), "MD")
        assert str(r) == "[1-8, MD]"

    def test_region_validation(self, space):
        with pytest.raises(RegionError):
            space.region(8)  # wrong arity
        with pytest.raises(RegionError):
            space.region(11, "MD")  # beyond n_points
        with pytest.raises(RegionError):
            space.region(8, "Mars")  # unknown node
        with pytest.raises(RegionError):
            space.region(Interval(2, 5), "MD")  # not a prefix

    def test_regions_hashable(self, space):
        d = {space.region(1, "WI"): 1}
        assert d[space.region(1, "WI")] == 1

    def test_mask(self, space):
        fact = Table(
            {
                "month": [1, 9, 3, 2],
                "state": ["MD", "MD", "WI", "NY"],
                "profit": [1.0, 2.0, 3.0, 4.0],
            }
        )
        r = space.region(8, "NE")
        assert list(space.mask(fact, r)) == [True, False, False, True]
        r_all = space.region(10, "All")
        assert space.mask(fact, r_all).all()

    def test_contains_cell(self, space):
        r = space.region(3, "MW")
        assert space.contains_cell(r, (2, "WI"))
        assert not space.contains_cell(r, (4, "WI"))
        assert not space.contains_cell(r, (2, "MD"))

    def test_finest_cells(self, space):
        cells = space.finest_cells()
        assert len(cells) == 40  # 10 x 4
        assert (1, "AL") not in cells  # AL not a leaf here
        assert (1, "WI") in cells

    def test_duplicate_dimension_rejected(self, time):
        with pytest.raises(RegionError):
            RegionSpace([time, time])

    def test_empty_dimensions_rejected(self):
        with pytest.raises(RegionError):
            RegionSpace([])
