"""Unit tests for cost models."""

import pytest

from repro.dimensions import (
    CallableCostModel,
    CellCostModel,
    CostError,
    HierarchicalDimension,
    IntervalDimension,
    ProductCostModel,
    RegionSpace,
    ZeroCostModel,
)


@pytest.fixture()
def space() -> RegionSpace:
    time = IntervalDimension("month", 3)
    loc = HierarchicalDimension.from_spec(
        "state", {"MW": ["WI", "IL"], "NE": ["MD"]},
        level_names=("All", "Division", "State"),
    )
    return RegionSpace([time, loc])


class TestCellCostModel:
    def test_sum(self, space):
        costs = {(t, s): 1.0 for t in (1, 2, 3) for s in ("WI", "IL", "MD")}
        cm = CellCostModel(space, costs)
        assert cm.cost(space.region(2, "MW")) == pytest.approx(4.0)  # 2 months x 2 states
        assert cm.cost(space.region(3, "All")) == pytest.approx(9.0)

    def test_missing_cells_cost_zero(self, space):
        cm = CellCostModel(space, {(1, "WI"): 5.0})
        assert cm.cost(space.region(1, "MD")) == 0.0

    def test_max_aggregate(self, space):
        cm = CellCostModel(space, {(1, "WI"): 5.0, (2, "WI"): 9.0}, agg="max")
        assert cm.cost(space.region(2, "WI")) == 9.0

    def test_avg_aggregate(self, space):
        cm = CellCostModel(space, {(1, "WI"): 4.0, (2, "WI"): 8.0}, agg="avg")
        assert cm.cost(space.region(2, "WI")) == 6.0

    def test_bad_aggregate(self, space):
        with pytest.raises(CostError):
            CellCostModel(space, {}, agg="median")

    def test_caching_consistent(self, space):
        cm = CellCostModel(space, {(1, "WI"): 5.0})
        r = space.region(1, "WI")
        assert cm.cost(r) == cm.cost(r) == 5.0


class TestProductCostModel:
    def test_product_form(self, space):
        cm = ProductCostModel(space, {"WI": 2.0, "IL": 1.0, "MD": 0.5})
        assert cm.cost(space.region(4 - 1, "MW")) == pytest.approx(3 * 3.0)
        assert cm.cost(space.region(1, "MD")) == pytest.approx(0.5)
        assert cm.cost(space.region(2, "All")) == pytest.approx(2 * 3.5)

    def test_monotone_in_budget_axes(self, space):
        """Bigger regions never cost less — the pruning precondition."""
        cm = ProductCostModel(space, {"WI": 2.0, "IL": 1.0, "MD": 0.5})
        assert cm.cost(space.region(1, "WI")) <= cm.cost(space.region(2, "WI"))
        assert cm.cost(space.region(1, "WI")) <= cm.cost(space.region(1, "MW"))
        assert cm.cost(space.region(1, "MW")) <= cm.cost(space.region(1, "All"))

    def test_missing_weight_rejected(self, space):
        with pytest.raises(CostError):
            ProductCostModel(space, {"WI": 2.0})

    def test_needs_both_dimension_kinds(self):
        time_only = RegionSpace([IntervalDimension("t", 2)])
        with pytest.raises(CostError):
            ProductCostModel(time_only, {})


class TestOtherModels:
    def test_callable(self, space):
        cm = CallableCostModel(lambda r: 42.0)
        assert cm.cost(space.region(1, "WI")) == 42.0

    def test_zero(self, space):
        assert ZeroCostModel().cost(space.region(1, "WI")) == 0.0
