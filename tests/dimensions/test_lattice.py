"""Unit tests for item hierarchies and the cube-subset level lattice."""

import numpy as np
import pytest

from repro.dimensions import (
    CubeSubset,
    HierarchicalDimension,
    HierarchyError,
    ItemHierarchies,
)
from repro.table import Table


@pytest.fixture()
def category() -> HierarchicalDimension:
    # Figure 5's Category hierarchy, with concrete leaf products.
    return HierarchicalDimension.from_spec(
        "category",
        {"Hardware": ["Desktop", "Laptop"], "Software": ["Games"]},
        level_names=("Any", "Division", "Category"),
        root_name="Any",
    )


@pytest.fixture()
def expense() -> HierarchicalDimension:
    return HierarchicalDimension.from_spec(
        "expense",
        {"Low": ["100K"], "High": ["1M"]},
        level_names=("Any", "Range", "Expense"),
        root_name="Any",
    )


@pytest.fixture()
def hierarchies(category, expense) -> ItemHierarchies:
    return ItemHierarchies([category, expense])


@pytest.fixture()
def items() -> Table:
    return Table(
        {
            "id": [1, 2, 3, 4, 5],
            "category": ["Desktop", "Laptop", "Games", "Desktop", "Laptop"],
            "expense": ["100K", "1M", "100K", "1M", "100K"],
        }
    )


class TestLattice:
    def test_level_count(self, hierarchies):
        # 3 depths for category x 3 depths for expense = 9 levels (Figure 6)
        assert len(hierarchies.levels()) == 9

    def test_base_level_first_all_last(self, hierarchies):
        levels = hierarchies.levels()
        assert levels[0] == (2, 2)
        assert levels[-1] == (0, 0)
        assert hierarchies.base_level == (2, 2)

    def test_duplicate_attribute_rejected(self, category):
        with pytest.raises(HierarchyError):
            ItemHierarchies([category, category])

    def test_empty_rejected(self):
        with pytest.raises(HierarchyError):
            ItemHierarchies([])


class TestEncoding:
    def test_base_cells(self, hierarchies, items):
        cell_of_item, cells = hierarchies.encode_items(items)
        assert len(cell_of_item) == 5
        # distinct (category, expense) combos: (D,100K),(L,1M),(G,100K),(D,1M),(L,100K)
        assert len(cells) == 5

    def test_items_in_same_cell_share_code(self, hierarchies):
        items = Table(
            {
                "id": [1, 2],
                "category": ["Desktop", "Desktop"],
                "expense": ["100K", "100K"],
            }
        )
        cell_of_item, cells = hierarchies.encode_items(items)
        assert cell_of_item[0] == cell_of_item[1]
        assert len(cells) == 1


class TestRollup:
    def test_rollup_to_divisions(self, hierarchies, items):
        cell_of_item, cells = hierarchies.encode_items(items)
        rm = hierarchies.rollup_map((1, 1), cells)
        names = {str(s) for s in rm.subsets}
        assert names <= {
            "[Hardware, Low]", "[Hardware, High]", "[Software, Low]", "[Software, High]",
        }
        # every base cell maps to exactly one subset
        assert rm.subset_of_base.shape == (len(cells),)
        assert rm.subset_of_base.max() < len(rm.subsets)

    def test_rollup_to_top(self, hierarchies, items):
        cell_of_item, cells = hierarchies.encode_items(items)
        rm = hierarchies.rollup_map((0, 0), cells)
        assert len(rm.subsets) == 1
        assert str(rm.subsets[0]) == "[Any, Any]"
        assert (rm.subset_of_base == 0).all()

    def test_rollup_membership_matches_mask(self, hierarchies, items):
        """Counting members through the rollup map == direct membership mask."""
        cell_of_item, cells = hierarchies.encode_items(items)
        for level in hierarchies.levels():
            rm = hierarchies.rollup_map(level, cells)
            subset_of_item = rm.subset_of_base[cell_of_item]
            for s_idx, subset in enumerate(rm.subsets):
                via_rollup = int((subset_of_item == s_idx).sum())
                via_mask = int(hierarchies.member_mask(items, subset).sum())
                assert via_rollup == via_mask, f"{subset} at level {level}"

    def test_bad_level_arity(self, hierarchies, items):
        __, cells = hierarchies.encode_items(items)
        with pytest.raises(HierarchyError):
            hierarchies.rollup_map((1,), cells)


class TestPredictionSubsets:
    def test_subsets_containing(self, hierarchies):
        subsets = hierarchies.subsets_containing({"category": "Desktop", "expense": "100K"})
        names = {str(s) for s in subsets}
        # Section 6.2's example: 3 x 3 = 9 enclosing subsets
        assert len(subsets) == 9
        assert "[Desktop, 100K]" in names
        assert "[Hardware, Low]" in names
        assert "[Any, Any]" in names

    def test_missing_attribute_rejected(self, hierarchies):
        with pytest.raises(HierarchyError):
            hierarchies.subsets_containing({"category": "Desktop"})

    def test_member_mask(self, hierarchies, items):
        subset = CubeSubset(("Hardware", "Low"), (1, 1))
        mask = hierarchies.member_mask(items, subset)
        # Hardware-and-Low items: Desktop/100K (1), Laptop/100K (5)
        assert list(items["id"][mask]) == [1, 5]
