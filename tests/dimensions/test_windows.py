"""Tests for generalized window dimensions."""

import numpy as np
import pytest

from repro.dimensions import (
    HierarchicalDimension,
    Interval,
    IntervalDimension,
    RegionError,
    RegionSpace,
    WindowedIntervalDimension,
)


class TestWindowedDimension:
    def test_explicit_windows(self):
        dim = WindowedIntervalDimension("t", 10, [(1, 3), (4, 6), (7, 10)])
        assert [str(w) for w in dim.intervals()] == ["1-3", "4-6", "7-10"]

    def test_sliding_factory(self):
        dim = WindowedIntervalDimension.sliding("t", 8, width=4)
        assert [str(w) for w in dim.intervals()] == [
            "1-4", "2-5", "3-6", "4-7", "5-8",
        ]

    def test_sliding_step(self):
        dim = WindowedIntervalDimension.sliding("t", 9, width=3, step=3)
        assert [str(w) for w in dim.intervals()] == ["1-3", "4-6", "7-9"]

    def test_window_beyond_points_rejected(self):
        with pytest.raises(RegionError):
            WindowedIntervalDimension("t", 5, [(1, 6)])

    def test_empty_windows_rejected(self):
        with pytest.raises(RegionError):
            WindowedIntervalDimension("t", 5, [])

    def test_bad_sliding_params(self):
        with pytest.raises(RegionError):
            WindowedIntervalDimension.sliding("t", 5, width=0)

    def test_interval_lookup_by_end(self):
        dim = WindowedIntervalDimension("t", 10, [(2, 5), (1, 7)])
        assert dim.interval(5) == Interval(2, 5)
        with pytest.raises(RegionError):
            dim.interval(9)

    def test_validate_value(self):
        dim = WindowedIntervalDimension("t", 10, [(2, 5)])
        dim.validate_value(Interval(2, 5))
        with pytest.raises(RegionError):
            dim.validate_value(Interval(1, 5))

    def test_prefix_dimension_still_rejects_nonprefix(self):
        dim = IntervalDimension("t", 10)
        with pytest.raises(RegionError):
            dim.validate_value(Interval(2, 5))


class TestWindowedRegionSpace:
    @pytest.fixture()
    def space(self):
        time = WindowedIntervalDimension.sliding("week", 6, width=2)
        loc = HierarchicalDimension.from_spec(
            "state", {"MW": ["WI"]}, level_names=("All", "Div", "State")
        )
        return RegionSpace([time, loc])

    def test_region_count(self, space):
        assert space.n_regions == 5 * 3  # 5 windows x (WI, MW, All)

    def test_tuple_shortcut(self, space):
        r = space.region((2, 3), "WI")
        assert r.values[0] == Interval(2, 3)

    def test_noncandidate_window_rejected(self, space):
        with pytest.raises(RegionError):
            space.region((1, 4), "WI")

    def test_mask_respects_window(self, space):
        from repro.table import Table

        fact = Table({"week": [1, 2, 3, 6], "state": ["WI"] * 4})
        r = space.region((2, 3), "All")
        assert list(space.mask(fact, r)) == [False, True, True, False]
