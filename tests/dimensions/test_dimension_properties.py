"""Property-based tests for the region/lattice algebra (Section 4.1, 6.1).

Mirrors the suffstats property suite: seeded random geometries drawn via
hypothesis, checking the structural invariants the cube and search layers
lean on — containment is a partial order (on cell sets), every lattice
rollup assigns each base cell and each item exactly once, and region cost
is monotone in window length / containment.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dimensions import (
    CellCostModel,
    HierarchicalDimension,
    IntervalDimension,
    ItemHierarchies,
    ProductCostModel,
    RegionSpace,
)
from repro.table import Table


@st.composite
def region_spaces(draw):
    """A small random space: one prefix-time dimension, one hierarchy."""
    n_points = draw(st.integers(2, 6))
    n_leaves = draw(st.integers(3, 6))
    split = draw(st.integers(1, n_leaves - 1))
    leaves = [f"L{i}" for i in range(n_leaves)]
    spec = {"GA": leaves[:split], "GB": leaves[split:]}
    time = IntervalDimension("month", n_points, unit="month")
    loc = HierarchicalDimension.from_spec(
        "loc", spec, level_names=("All", "Group", "Leaf")
    )
    return RegionSpace([time, loc])


@st.composite
def item_hierarchies(draw):
    """Two random item hierarchies plus an item table using their leaves."""
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    dims = []
    for attr in ("cat", "price"):
        n_leaves = draw(st.integers(2, 5))
        split = draw(st.integers(1, n_leaves - 1))
        leaves = [f"{attr}{i}" for i in range(n_leaves)]
        spec = {f"{attr}A": leaves[:split], f"{attr}B": leaves[split:]}
        dims.append(
            HierarchicalDimension.from_spec(
                attr, spec, level_names=("Any", "Group", "Leaf")
            )
        )
    n_items = draw(st.integers(2, 12))
    table = Table(
        {
            "item": np.arange(n_items),
            "cat": rng.choice(dims[0].leaf_names, size=n_items),
            "price": rng.choice(dims[1].leaf_names, size=n_items),
        }
    )
    return ItemHierarchies(dims), table


def _cells_of(space, region):
    return frozenset(
        cell
        for cell in space.finest_cells()
        if space.contains_cell(region, cell)
    )


def _value_contained(space, r1, r2):
    """Per-dimension containment: every value of r1 sits inside r2's."""
    interval1, node1 = r1.values
    interval2, node2 = r2.values
    loc = space.dimensions[1]
    return (
        interval2.start <= interval1.start
        and interval1.end <= interval2.end
        and set(loc.leaves_under(str(node1)))
        <= set(loc.leaves_under(str(node2)))
    )


@given(region_spaces())
@settings(max_examples=30, deadline=None)
def test_containment_is_a_partial_order_on_cellsets(space):
    """Cell sets order candidate regions: reflexive, antisymmetric,
    transitive, and equivalent to per-dimension value containment."""
    regions = space.all_regions()
    cells = {r: _cells_of(space, r) for r in regions}
    for r in regions:
        assert cells[r], f"candidate region {r} covers no cells"
        assert cells[r] <= cells[r]
    for r1 in regions:
        for r2 in regions:
            sub = cells[r1] <= cells[r2]
            assert sub == _value_contained(space, r1, r2)
            if sub and cells[r2] <= cells[r1]:
                assert cells[r1] == cells[r2]
            for r3 in regions:
                if sub and cells[r2] <= cells[r3]:
                    assert cells[r1] <= cells[r3]


@given(region_spaces(), st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_mask_agrees_with_contains_cell(space, seed):
    """Row membership over a random fact table == per-row cell containment."""
    rng = np.random.default_rng(seed)
    n_rows = 40
    time_dim, loc_dim = space.dimensions
    fact = Table(
        {
            "month": rng.integers(1, time_dim.n_points + 1, size=n_rows),
            "loc": rng.choice(loc_dim.leaf_names, size=n_rows),
        }
    )
    months = fact.column("month")
    locs = fact.column("loc")
    for region in space.all_regions():
        mask = space.mask(fact, region)
        expected = np.array(
            [
                space.contains_cell(region, (months[i], locs[i]))
                for i in range(n_rows)
            ]
        )
        assert np.array_equal(mask, expected)


@given(item_hierarchies())
@settings(max_examples=30, deadline=None)
def test_rollup_assigns_each_cell_and_item_exactly_once(pair):
    """At every lattice level the subsets partition base cells and items."""
    hierarchies, table = pair
    cell_of_item, base_codes = hierarchies.encode_items(table)
    levels = hierarchies.levels()
    assert len(set(levels)) == len(levels)
    for rm in hierarchies.iter_all_subsets(base_codes):
        assert rm.subset_of_base.shape == (len(base_codes),)
        assert rm.subset_of_base.min() >= 0
        assert rm.subset_of_base.max() < len(rm.subsets)
        membership = np.zeros(table.n_rows, dtype=np.int64)
        for subset in rm.subsets:
            membership += hierarchies.member_mask(table, subset)
        assert np.array_equal(membership, np.ones(table.n_rows, dtype=np.int64))
        # The rollup map and the membership masks agree cell by cell.
        for s_idx, subset in enumerate(rm.subsets):
            mask = hierarchies.member_mask(table, subset)
            assert np.array_equal(
                mask, rm.subset_of_base[cell_of_item] == s_idx
            )


@given(region_spaces(), st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_cost_is_monotone(space, seed):
    """Product cost grows with window length; nonnegative cell cost is
    monotone under region containment."""
    rng = np.random.default_rng(seed)
    time_dim, loc_dim = space.dimensions
    weights = {leaf: float(w) for leaf, w in zip(
        loc_dim.leaf_names,
        rng.uniform(0.1, 3.0, size=loc_dim.n_leaves),
    )}
    product = ProductCostModel(space, weights)
    cell_costs = {
        cell: float(c)
        for cell, c in zip(
            space.finest_cells(),
            rng.uniform(0.0, 5.0, size=len(space.finest_cells())),
        )
    }
    summed = CellCostModel(space, cell_costs, agg="sum")
    for node in loc_dim.nodes():
        costs = [
            product.cost(space.region(t, node.name))
            for t in range(1, time_dim.n_points + 1)
        ]
        assert all(a < b for a, b in zip(costs, costs[1:]))
    regions = space.all_regions()
    for r1 in regions:
        for r2 in regions:
            if _value_contained(space, r1, r2):
                assert summed.cost(r1) <= summed.cost(r2) + 1e-12
