"""Unit tests for hierarchical dimensions."""

import numpy as np
import pytest

from repro.dimensions import HierarchicalDimension, HierarchyError, HierarchyNode


@pytest.fixture()
def location() -> HierarchicalDimension:
    return HierarchicalDimension.from_spec(
        "state",
        {"CA": ["ON"], "US": ["AL", "WI"], "KR": ["SE"]},
        level_names=("All", "Country", "State"),
    )


class TestConstruction:
    def test_leaf_names_sorted(self, location):
        assert location.leaf_names == ("AL", "ON", "SE", "WI")

    def test_levels(self, location):
        assert location.level_names == ("All", "Country", "State")
        assert location.leaf_depth == 2

    def test_mixed_leaf_depth_rejected(self):
        root = HierarchyNode("All", [
            HierarchyNode("deep", [HierarchyNode("leaf1")]),
            HierarchyNode("shallow"),
        ])
        with pytest.raises(HierarchyError):
            HierarchicalDimension("x", root, ("All", "Mid", "Leaf"))

    def test_wrong_level_name_count_rejected(self):
        root = HierarchyNode("All", [HierarchyNode("a")])
        with pytest.raises(HierarchyError):
            HierarchicalDimension("x", root, ("All",))

    def test_duplicate_node_rejected(self):
        root = HierarchyNode("All", [HierarchyNode("a"), HierarchyNode("a")])
        with pytest.raises(HierarchyError):
            HierarchicalDimension("x", root, ("All", "Leaf"))

    def test_bad_spec_rejected(self):
        with pytest.raises(HierarchyError):
            HierarchicalDimension.from_spec("x", {"a": 42}, ("All", "Mid", "Leaf"))


class TestNavigation:
    def test_node_lookup(self, location):
        assert location.node("US").name == "US"
        with pytest.raises(HierarchyError):
            location.node("XX")

    def test_contains(self, location):
        assert "US" in location
        assert "WI" in location
        assert "XX" not in location

    def test_depth_and_level(self, location):
        assert location.depth_of("All") == 0
        assert location.depth_of("US") == 1
        assert location.depth_of("WI") == 2
        assert location.level_of("US") == "Country"

    def test_parents_and_ancestors(self, location):
        assert location.parent_of("WI") == "US"
        assert location.parent_of("All") is None
        assert location.ancestors_of("WI") == ["WI", "US", "All"]

    def test_leaves_under(self, location):
        assert sorted(location.leaves_under("US")) == ["AL", "WI"]
        assert sorted(location.leaves_under("All")) == ["AL", "ON", "SE", "WI"]
        assert location.leaves_under("WI") == ("WI",)

    def test_nodes_at_depth(self, location):
        countries = {n.name for n in location.nodes_at_depth(1)}
        assert countries == {"CA", "US", "KR"}

    def test_ancestor_at_depth(self, location):
        assert location.ancestor_at_depth("WI", 0) == "All"
        assert location.ancestor_at_depth("WI", 1) == "US"
        assert location.ancestor_at_depth("WI", 2) == "WI"
        with pytest.raises(HierarchyError):
            location.ancestor_at_depth("WI", 3)


class TestMembership:
    def test_membership_mask(self, location):
        values = np.array(["WI", "SE", "AL", "ON"], dtype=object)
        mask = location.membership_mask(values, "US")
        assert list(mask) == [True, False, True, False]

    def test_membership_all(self, location):
        values = np.array(["WI", "SE"], dtype=object)
        assert location.membership_mask(values, "All").all()

    def test_unknown_leaf_rejected(self, location):
        with pytest.raises(HierarchyError):
            location.encode_leaves(np.array(["Mars"], dtype=object))

    def test_contains_leaf(self, location):
        assert location.contains_leaf("US", "WI")
        assert not location.contains_leaf("KR", "WI")

    def test_ancestor_codes_at_depth(self, location):
        codes, names = location.ancestor_codes_at_depth(1)
        # leaf order: AL, ON, SE, WI -> countries US, CA, KR, US
        decoded = [names[c] for c in codes]
        assert decoded == ["US", "CA", "KR", "US"]
