"""Smoke tests for the figure drivers (tiny sizes; shapes asserted in benches)."""

import numpy as np
import pytest

from repro.experiments import (
    render_grid,
    render_series,
    run_fig7,
    run_fig8,
    run_fig10a,
    run_fig11b,
    run_fig11f,
    run_fig12b,
)


class TestRendering:
    def test_render_grid(self):
        text = render_grid("T", ("a", "b"), [(1, 2.5), (3, 4.0)])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_render_series(self):
        text = render_series("T", "x", [1, 2], {"s1": [0.1, 0.2], "s2": [9, 8]})
        assert "s1" in text and "s2" in text
        assert "0.1" in text

    def test_float_formatting(self):
        text = render_grid("T", ("v",), [(0.000123456,)])
        assert "0.0001235" in text


class TestFig7Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(n_items=40, budgets=(15.0, 45.0), sampling_trials=1)

    def test_panels_cover_budgets(self, result):
        assert [p.budget for p in result.cv_points] == [15.0, 45.0]
        assert [p.budget for p in result.training_points] == [15.0, 45.0]

    def test_render_contains_both_panels(self, result):
        text = result.render()
        assert "Figure 7(a,b)" in text and "Figure 7(c)" in text

    def test_errors_finite(self, result):
        for p in result.cv_points:
            assert np.isfinite(p.bel_err)


class TestFig8Driver:
    def test_runs_and_renders(self):
        result = run_fig8(n_items=40, budgets=(20.0,), n_folds=2)
        assert len(result.basic) == len(result.tree) == len(result.cube) == 1
        assert "Figure 8" in result.render()


class TestFig10Driver:
    def test_single_point(self):
        result = run_fig10a(
            noises=(0.5,), n_datasets=1, n_items=120, n_folds=2
        )
        assert len(result.basic) == 1
        assert np.isfinite(result.tree[0])


class TestScalingDrivers:
    def test_fig11b_series_lengths(self):
        result = run_fig11b(region_counts=(4, 8), n_items=150)
        assert len(result.xs) == 2
        assert result.xs[1] > result.xs[0]
        assert all(len(v) == 2 for v in result.series.values())

    def test_fig12b_rows(self):
        result = run_fig12b(feature_counts=(2, 4), n_items=150, n_regions=6)
        assert result.xs == [2, 4]
        assert all(s > 0 for s in result.seconds)

    def test_fig11f_sweeps_both_backends(self, tmp_path):
        # run_fig11f itself asserts the warm path reads zero facts and
        # reproduces the cold optimized cube bit-for-bit.
        result = run_fig11f(
            backends=("npz", "columnar"),
            n_items=120,
            n_regions=6,
            scratch_dir=tmp_path,
            journal_path=None,
        )
        assert result.xs == ("npz", "columnar")
        assert set(result.series) == {
            "generate", "cold optimized cube", "table build", "warm build"
        }
        assert all(
            len(v) == 2 and all(s > 0 for s in v)
            for v in result.series.values()
        )

    def test_fig11f_rejects_unknown_backend(self, tmp_path):
        from repro.exceptions import ConfigError

        with pytest.raises(ConfigError, match="backend"):
            run_fig11f(backends=("tape",), scratch_dir=tmp_path,
                       journal_path=None)


class TestCli:
    def test_fast_figure_runs(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["fig12b", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12(b)" in out

    def test_unknown_figure_rejected(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["figX"])
