"""--workers N must not change any figure: same bellwethers, same errors.

Runs the fig7/fig9 fast configurations serially and with the process-wide
parallel config set to 2 workers (exactly what ``--workers 2`` does), and
compares the rendered tables character for character.
"""

import pytest

from repro.exec import ParallelConfig, get_default_config, set_default_config
from repro.experiments import run_fig7, run_fig9


@pytest.fixture()
def two_workers():
    original = get_default_config()
    set_default_config(ParallelConfig(workers=2))
    try:
        yield
    finally:
        set_default_config(original)


FIG7_KWARGS = dict(n_items=40, budgets=(15.0, 45.0), sampling_trials=1)
FIG9_KWARGS = dict(
    n_items=60, budgets=(10.0, 40.0), prediction_budgets=(20.0,), n_folds=2
)


class TestWorkersChangeNothing:
    def test_fig7_identical(self, two_workers):
        parallel = run_fig7(**FIG7_KWARGS).render()
        set_default_config(ParallelConfig(workers=1))
        serial = run_fig7(**FIG7_KWARGS).render()
        assert parallel == serial

    def test_fig9_identical(self, two_workers):
        parallel = run_fig9(**FIG9_KWARGS).render()
        set_default_config(ParallelConfig(workers=1))
        serial = run_fig9(**FIG9_KWARGS).render()
        assert parallel == serial
