"""Shared fixtures for the approximate-tier (repro.aqp) test blitz.

One small mail-order deployment per module; servers are built per test
(AQP state is mutable — journals grow, models swap), so nothing leaks.
"""

import pytest

from repro.core import BasicBellwetherSearch, build_store
from repro.datasets import make_mailorder
from repro.ml import TrainingSetEstimator
from repro.serve import ServerState

N_ITEMS = 14
N_MONTHS = 4
SUBSET = [1, 3, 4, 6, 8, 10, 11, 13]
BUDGETS = (15.0, 45.0, 85.0)


@pytest.fixture(scope="module")
def dataset():
    return make_mailorder(
        n_items=N_ITEMS,
        n_months=N_MONTHS,
        seed=0,
        error_estimator=TrainingSetEstimator(),
    )


@pytest.fixture()
def search(dataset):
    store, costs, __ = build_store(dataset.task)
    # min_examples=3 keeps the 8-item SUBSET feasible in enough regions
    # for the approx-vs-exact comparisons to exercise non-trivial sets.
    return BasicBellwetherSearch(dataset.task, store, costs=costs, min_examples=3)


@pytest.fixture()
def make_state(dataset, tmp_path):
    """Factory: a fresh AQP-enabled ServerState in its own directory."""
    counter = {"n": 0}

    def build(**kwargs):
        counter["n"] += 1
        root = tmp_path / f"state{counter['n']}"
        store, costs, __ = build_store(dataset.task)
        return ServerState(
            dataset.task,
            store,
            dataset.hierarchies,
            tables_dir=root / "tables",
            costs=costs,
            dataset_name="mailorder",
            min_subset_size=3,
            aqp_dir=root / "aqp",
            **kwargs,
        )

    return build


def warm_and_train(state, budgets=BUDGETS, subsets=(None, SUBSET)):
    """Journal an exact workload over budgets x subsets, then train.

    Infeasible (budget, subset) points are skipped, like any client
    that answers a 409 by moving on.
    """
    from repro.serve import InfeasibleQueryError

    for budget in budgets:
        for items in subsets:
            try:
                state.bellwether(budget=budget, items=items)
            except InfeasibleQueryError:
                continue
        try:
            state.predict(items=subsets[-1], budget=budget)
        except InfeasibleQueryError:
            continue
    return state.aqp_train()
