"""Surface/encoder unit contracts: exact feasibility, miss reasons, seeds.

The surface predicts only the rmse ordinate; everything the criterion
sees (counts, cost, coverage) is exact, so the feasible set — and the 409
behaviour it implies — must be bit-identical to the exact search.
"""

import numpy as np
import pytest

from repro.aqp import (
    ApproxMiss,
    AqpConfig,
    SubsetEncoder,
    train_surface,
)
from repro.exceptions import ConfigError

from .conftest import SUBSET


@pytest.fixture()
def encoder(dataset):
    return SubsetEncoder(dataset.task, dataset.hierarchies, quantization=8)


def _bellwether_record(search, budget, items):
    return {
        "kind": "bellwether",
        "store_version": int(search.store.version),
        "budget": float(budget),
        "items": items,
        "winner": None,
    }


def _train(search, encoder, records, config=None, model_version=1):
    return train_surface(
        search=search,
        journal_records=records,
        encoder=encoder,
        config=config or AqpConfig(),
        model_version=model_version,
    )


# ------------------------------------------------------------------ encoder


def test_encoder_key_is_stable_and_order_insensitive(encoder):
    assert encoder.key(SUBSET) == encoder.key(list(reversed(SUBSET)))
    assert encoder.key(None) != encoder.key(SUBSET)
    # All-items key is the saturated grid: every cell fraction is 1.
    assert set(encoder.key(None)) == {encoder.quantization}


def test_encoder_rejects_unknown_ids(encoder):
    with pytest.raises(ConfigError):
        encoder.columns_of([10_000])
    with pytest.raises(ConfigError):
        encoder.key([1, 10_000])


def test_encoder_quantization_bounds(encoder):
    for items in (None, SUBSET, SUBSET[:3]):
        codes = np.asarray(encoder.key(items))
        assert codes.min() >= 0
        assert codes.max() <= encoder.quantization
    assert len(encoder.key(SUBSET)) == encoder.n_features


def test_encoder_rejects_bad_quantization(dataset):
    with pytest.raises(ConfigError):
        SubsetEncoder(dataset.task, dataset.hierarchies, quantization=0)


# ------------------------------------------------------------------ config


def test_config_validates_safety_and_ridge():
    with pytest.raises(ConfigError):
        AqpConfig(safety=0.5)
    with pytest.raises(ConfigError):
        AqpConfig(ridge=-1.0)


# ------------------------------------------------------------------ surface


def test_feasible_set_matches_exact_search_bit_for_bit(search, encoder):
    records = [_bellwether_record(search, 45.0, None)]
    model = _train(search, encoder, records)
    for budget in (15.0, 45.0, 85.0, None):
        exact = search.run(budget=budget)
        answer = model.answer_bellwether(budget, None)
        got = [(model.regions[j], r) for j, r in answer.feasible]
        assert [region for region, __ in got] == [
            rr.region for rr in exact.feasible
        ]
        if exact.bellwether is None:
            assert not answer.found
        else:
            assert answer.found
            winner = model.regions[answer.region_index]
            assert answer.cost == float(search.costs[winner])


def test_infeasible_budget_answers_not_found_without_miss(search, encoder):
    model = _train(search, encoder, [_bellwether_record(search, 45.0, None)])
    answer = model.answer_bellwether(0.001, None)
    assert not answer.found
    assert answer.feasible == ()


def test_unseen_key_and_tolerance_misses(search, encoder):
    model = _train(search, encoder, [_bellwether_record(search, 45.0, None)])
    with pytest.raises(ApproxMiss) as exc:
        model.answer_bellwether(45.0, SUBSET)
    assert exc.value.reason == "unseen_key"
    with pytest.raises(ApproxMiss) as exc:
        model.answer_bellwether(45.0, None, tolerance=1e-300)
    assert exc.value.reason == "tolerance"


def test_prediction_within_self_estimate_on_trained_key(search, encoder):
    records = [
        _bellwether_record(search, b, items)
        for b in (15.0, 45.0, 85.0)
        for items in (None, SUBSET)
    ]
    model = _train(search, encoder, records)
    for budget in (15.0, 45.0, 85.0):
        for items in (None, SUBSET):
            exact = search.run(budget=budget, item_ids=items)
            answer = model.answer_bellwether(budget, items)
            assert answer.found == (exact.bellwether is not None)
            if not answer.found:
                continue
            exact_at_winner = {
                rr.region: float(rr.rmse) for rr in exact.feasible
            }[model.regions[answer.region_index]]
            assert abs(answer.rmse - exact_at_winner) <= answer.estimated_error


def test_training_is_deterministic(search, encoder):
    records = [
        _bellwether_record(search, b, items)
        for b in (15.0, 85.0)
        for items in (None, SUBSET)
    ]
    a = _train(search, encoder, records)
    b = _train(search, encoder, records)
    assert np.array_equal(a.coefs, b.coefs)
    assert a.bounds.keys() == b.bounds.keys()
    for key in a.bounds:
        assert np.array_equal(a.bounds[key], b.bounds[key])
    assert a.status() == b.status()


def test_status_reports_geometry(search, encoder):
    model = _train(search, encoder, [_bellwether_record(search, 45.0, None)])
    status = model.status()
    assert status["model_version"] == 1
    assert status["store_version"] == int(search.store.version)
    assert status["n_trained_keys"] == 1
    assert status["n_regions"] == len(model.regions)
