"""Workload-journal contract: strict reads, torn writes, counters.

The journal is the surface's only training input, so a corrupt journal
must fail loudly (``StorageError`` + ``aqp.journal_errors``) rather than
train on garbage.
"""

import json

import pytest

from repro.aqp import SCHEMA, WorkloadJournal
from repro.obs.catalog import AQP_JOURNAL_ERRORS, AQP_JOURNAL_RECORDS
from repro.obs.metrics import get_registry
from repro.storage import StorageError


def _counter(name: str) -> float:
    return get_registry().counter_values().get(name, 0.0)


@pytest.fixture()
def journal(tmp_path):
    return WorkloadJournal(tmp_path / "workload.jsonl")


def test_round_trip_preserves_records_and_order(journal):
    journal.log_bellwether(store_version=1, budget=20.0, items=None, winner="[1-3, WI]")
    journal.log_predict(store_version=1, budget=None, items=[1, 2], region=["All"])
    journal.log_delta(store_version=2)
    journal.log_bellwether(store_version=2, budget=None, items=[3], winner=None)
    records = journal.read()
    assert [r["kind"] for r in records] == [
        "bellwether", "predict", "delta", "bellwether",
    ]
    assert records[0]["winner"] == "[1-3, WI]"
    assert records[0]["budget"] == 20.0
    assert records[1]["items"] == [1, 2]
    assert records[1]["region"] == ["All"]
    assert records[3]["budget"] is None
    # queries() hides the version markers but keeps query order.
    assert [r["kind"] for r in journal.queries()] == [
        "bellwether", "predict", "bellwether",
    ]
    assert len(journal) == 4


def test_header_written_once_and_validated(journal, tmp_path):
    journal.log_delta(store_version=1)
    journal.log_delta(store_version=2)
    lines = (tmp_path / "workload.jsonl").read_text().splitlines()
    assert json.loads(lines[0]) == {"schema": SCHEMA}
    assert len(lines) == 3


def test_append_rejects_bad_kind_and_missing_version(journal):
    with pytest.raises(StorageError):
        journal.append({"kind": "nonsense", "store_version": 1})
    with pytest.raises(StorageError):
        journal.append({"kind": "bellwether"})
    # Nothing was written: the journal stays absent and reads empty.
    assert journal.read() == []


def test_records_counter_tracks_appends(journal):
    before = _counter(AQP_JOURNAL_RECORDS)
    journal.log_delta(store_version=1)
    journal.log_delta(store_version=2)
    assert _counter(AQP_JOURNAL_RECORDS) == before + 2


def test_missing_file_reads_empty(journal):
    assert journal.read() == []
    assert journal.queries() == []


@pytest.mark.parametrize(
    "corruption",
    ["truncate", "garbage_line", "bad_header", "empty", "non_record"],
)
def test_corruption_raises_storage_error_and_counts(journal, tmp_path, corruption):
    journal.log_bellwether(store_version=1, budget=10.0, items=None, winner="w")
    path = tmp_path / "workload.jsonl"
    if corruption == "truncate":
        # Tear the final append mid-line (no trailing newline).
        path.write_text(path.read_text()[:-3])
    elif corruption == "garbage_line":
        with open(path, "a") as fh:
            fh.write("{not json\n")
    elif corruption == "bad_header":
        lines = path.read_text().splitlines()
        lines[0] = json.dumps({"schema": "aqp-workload-v999"})
        path.write_text("\n".join(lines) + "\n")
    elif corruption == "empty":
        path.write_text("")
    else:  # a valid JSON line that is not a valid record
        with open(path, "a") as fh:
            fh.write(json.dumps({"kind": "bellwether"}) + "\n")
    before = _counter(AQP_JOURNAL_ERRORS)
    with pytest.raises(StorageError):
        journal.read()
    assert _counter(AQP_JOURNAL_ERRORS) == before + 1
