"""Property-based contracts of the approximate tier (Hypothesis).

Three promises, each quantified over random subsets/budgets:

1. **Determinism** — same journal, same seed, same store => bit-identical
   surface and bit-identical answers.
2. **Monotone tolerance** — replicating the training workload never
   *loosens* the self-estimate: more observations of a key can only
   shrink (never grow) the declared tolerance.
3. **Exact fallback** — on every miss path, the served payload is
   bit-for-bit the exact answer (only the ``requested_mode`` /
   ``fallback_reason`` annotations differ).
"""

import functools

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aqp import AqpConfig, SubsetEncoder, train_surface
from repro.core import BasicBellwetherSearch, build_store
from repro.datasets import make_mailorder
from repro.ml import TrainingSetEstimator
from repro.serve import InfeasibleQueryError

N_ITEMS = 12
ITEM_IDS = list(range(1, N_ITEMS + 1))
BUDGETS = (15.0, 45.0, 85.0)


@functools.cache
def _dataset():
    return make_mailorder(
        n_items=N_ITEMS,
        n_months=3,
        seed=0,
        error_estimator=TrainingSetEstimator(),
    )


@functools.cache
def _search():
    ds = _dataset()
    store, costs, __ = build_store(ds.task)
    return BasicBellwetherSearch(ds.task, store, costs=costs, min_examples=3)


@functools.cache
def _encoder():
    ds = _dataset()
    return SubsetEncoder(ds.task, ds.hierarchies, quantization=8)


def _records(subsets, budgets=BUDGETS):
    version = int(_search().store.version)
    return [
        {
            "kind": "bellwether",
            "store_version": version,
            "budget": float(b),
            "items": None if items is None else list(items),
            "winner": None,
        }
        for b in budgets
        for items in subsets
    ]


def _train(records, seed=0):
    return train_surface(
        search=_search(),
        journal_records=records,
        encoder=_encoder(),
        config=AqpConfig(seed=seed),
        model_version=1,
    )


subsets = st.sets(st.sampled_from(ITEM_IDS), min_size=4).map(sorted)
budgets = st.sampled_from(BUDGETS)


# ------------------------------------------------------------- determinism


@given(items=subsets, budget=budgets, seed=st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_training_and_answers_are_deterministic(items, budget, seed):
    records = _records([None, items])
    a = _train(records, seed=seed)
    b = _train(records, seed=seed)
    assert np.array_equal(a.coefs, b.coefs)
    for key in a.bounds:
        assert np.array_equal(a.bounds[key], b.bounds[key])
    first = a.answer_bellwether(budget, items)
    second = b.answer_bellwether(budget, items)
    assert first == second  # frozen dataclass: float-bit equality


# ------------------------------------------ monotone tolerance estimates


@given(items=subsets, budget=budgets, replication=st.integers(2, 5))
@settings(max_examples=25, deadline=None)
def test_tolerance_never_loosens_as_workload_grows(items, budget, replication):
    base = _records([None, items])
    small = _train(base)
    large = _train(base * replication)
    one = small.answer_bellwether(budget, items)
    many = large.answer_bellwether(budget, items)
    assert many.found == one.found
    if not one.found:
        return
    # The replication-invariant ridge leaves the fit (hence the residual
    # bounds) unchanged up to float noise, while the per-key observation
    # count shrinks the exploration term — the estimate cannot grow.
    assert many.estimated_error <= one.estimated_error + 1e-9


# --------------------------------------------------- exact fallback paths


@functools.cache
def _fallback_state():
    """A live AQP server whose model never auto-retrains (miss harness)."""
    import tempfile
    from pathlib import Path

    from repro.serve import ServerState

    ds = _dataset()
    store, costs, __ = build_store(ds.task)
    tmp = tempfile.TemporaryDirectory(prefix="repro-aqp-prop-")
    root = Path(tmp.name)
    state = ServerState(
        ds.task,
        store,
        ds.hierarchies,
        tables_dir=root / "tables",
        costs=costs,
        dataset_name="mailorder",
        min_subset_size=3,
        aqp_dir=root / "aqp",
        aqp_config=AqpConfig(auto_retrain=False),
    )
    state._prop_tmp = tmp  # keep the directory alive with the state
    return state


def _strip(payload):
    clean = dict(payload)
    clean.pop("requested_mode", None)
    clean.pop("fallback_reason", None)
    return clean


@given(items=st.one_of(st.none(), subsets), budget=budgets)
@settings(max_examples=25, deadline=None)
def test_fallback_is_bit_for_bit_exact_on_every_miss(items, budget):
    state = _fallback_state()
    try:
        exact = state.bellwether(budget=budget, items=items)
    except InfeasibleQueryError:
        # The approx path must agree that the query is infeasible.
        try:
            state.bellwether(budget=budget, items=items, mode="approx")
        except InfeasibleQueryError:
            return
        raise AssertionError("approx path answered an infeasible query")
    # Miss path 1: no model at all (the state never trains here), or
    # miss path 2: unseen key / tolerance once another test trained it.
    got = state.bellwether(budget=budget, items=items, mode="approx")
    if got["mode"] == "exact":
        assert got["fallback_reason"] in (
            "no_model", "unseen_key", "tolerance", "version_drift",
        )
        assert _strip(got) == exact
    # Forcing an impossible tolerance always misses, even on trained keys.
    forced = state.bellwether(
        budget=budget, items=items, mode="approx", tolerance=1e-300
    )
    assert forced["mode"] == "exact"
    assert _strip(forced) == exact
