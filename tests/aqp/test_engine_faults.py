"""Fault injection: a broken workload journal must degrade, not lie.

A corrupt/truncated journal makes training raise ``StorageError``; the
server then serves exact-only (every ``mode=approx`` request falls back
with ``fallback_reason="journal_error"``) until a repaired journal
trains successfully — all of it visible in the ``aqp.*`` counters.
"""

import pytest

from repro.obs.catalog import AQP_FALLBACKS, AQP_JOURNAL_ERRORS
from repro.obs.metrics import get_registry
from repro.storage import StorageError

from .conftest import SUBSET, warm_and_train


def _counter(name: str) -> float:
    return get_registry().counter_values().get(name, 0.0)


def _corrupt(state) -> None:
    with open(state.aqp.journal.path, "a") as fh:
        fh.write("{torn mid-write")


def test_corrupt_journal_fails_training_and_degrades(make_state):
    state = make_state()
    state.bellwether(budget=45.0)  # journal one record
    _corrupt(state)
    errors_before = _counter(AQP_JOURNAL_ERRORS)
    with pytest.raises(StorageError):
        state.aqp_train()
    assert _counter(AQP_JOURNAL_ERRORS) == errors_before + 1
    status = state.aqp_status()
    assert status["degraded"] is True
    assert status["trained"] is False


def test_degraded_server_serves_exact_only_with_counters(make_state):
    state = make_state()
    state.bellwether(budget=45.0)
    _corrupt(state)
    with pytest.raises(StorageError):
        state.aqp_train()
    fallbacks_before = _counter(AQP_FALLBACKS)
    exact = state.bellwether(budget=45.0)
    got = state.bellwether(budget=45.0, mode="approx")
    assert got["mode"] == "exact"
    assert got["requested_mode"] == "approx"
    assert got["fallback_reason"] == "journal_error"
    assert got["bellwether"] == exact["bellwether"]
    assert _counter(AQP_FALLBACKS) == fallbacks_before + 1
    # /healthz-style liveness: the exact endpoints never saw the fault.
    assert exact["mode"] == "exact"
    assert "fallback_reason" not in exact


def test_corruption_after_training_keeps_model_until_retrain(make_state):
    state = make_state()
    warm_and_train(state)
    _corrupt(state)
    # The in-memory model still answers: corruption only bites on read.
    got = state.bellwether(budget=45.0, mode="approx")
    assert got["mode"] == "approx"
    with pytest.raises(StorageError):
        state.aqp_train()
    # Now degraded: exact-only, even though a model exists in memory.
    got = state.bellwether(budget=45.0, mode="approx")
    assert got["mode"] == "exact"
    assert got["fallback_reason"] == "journal_error"


def test_repaired_journal_recovers(make_state):
    state = make_state()
    state.bellwether(budget=45.0)
    _corrupt(state)
    with pytest.raises(StorageError):
        state.aqp_train()
    # Repair: drop the torn tail (everything after the last newline).
    path = state.aqp.journal.path
    text = path.read_text()
    path.write_text(text[: text.rindex("\n") + 1])
    info = state.aqp_train()
    assert info["model_version"] == 1
    status = state.aqp_status()
    assert status["degraded"] is False
    assert status["trained"] is True
    assert state.bellwether(budget=45.0, mode="approx")["mode"] == "approx"


def test_unwritable_journal_surfaces_storage_error(make_state, tmp_path):
    state = make_state()
    # Replace the journal file with a directory: appends must fail loudly
    # as StorageError (RPR006: no bare OSError escapes a public API)...
    path = state.aqp.journal.path
    path.parent.mkdir(parents=True, exist_ok=True)
    path.mkdir()
    with pytest.raises(StorageError):
        state.aqp.journal.log_delta(store_version=1)
