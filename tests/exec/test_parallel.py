"""Unit tests for the region fan-out executor (repro.exec)."""

import numpy as np
import pytest

from repro.exec import (
    ParallelConfig,
    ParallelExecutor,
    get_default_config,
    set_default_config,
)
from repro.exec.parallel import _fork_available
from repro.obs import get_registry

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="no fork start method on this platform"
)


class TestConfig:
    def test_defaults_are_serial(self):
        cfg = ParallelConfig()
        assert cfg.workers == 1
        assert cfg.is_serial
        assert cfg.resolved_backend() == "serial"

    @pytest.mark.parametrize(
        "kwargs",
        [dict(workers=0), dict(backend="gpu"), dict(chunk_size=0)],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ParallelConfig(**kwargs)

    def test_serial_backend_overrides_workers(self):
        assert ParallelConfig(workers=8, backend="serial").is_serial

    def test_default_config_roundtrip(self):
        original = get_default_config()
        try:
            set_default_config(ParallelConfig(workers=3))
            assert get_default_config().workers == 3
            assert ParallelExecutor().config.workers == 3
        finally:
            set_default_config(original)


class TestMapOrder:
    @pytest.mark.parametrize(
        "cfg",
        [
            ParallelConfig(),
            ParallelConfig(workers=3, backend="thread"),
            ParallelConfig(workers=3, backend="thread", chunk_size=2),
            pytest.param(ParallelConfig(workers=3), marks=needs_fork),
            pytest.param(
                ParallelConfig(workers=2, chunk_size=1), marks=needs_fork
            ),
        ],
    )
    def test_results_in_input_order(self, cfg):
        items = list(range(17))
        out = ParallelExecutor(cfg).map(lambda i: i * i, items)
        assert out == [i * i for i in items]

    def test_empty_and_single_item(self):
        ex = ParallelExecutor(ParallelConfig(workers=4))
        assert ex.map(lambda i: i, []) == []
        assert ex.map(lambda i: i + 1, [41]) == [42]

    def test_arrays_survive_the_pipe(self):
        cfg = ParallelConfig(workers=2) if _fork_available() else ParallelConfig(
            workers=2, backend="thread"
        )
        arrays = [np.arange(5) * k for k in range(6)]
        out = ParallelExecutor(cfg).map(lambda a: a.sum(), arrays)
        assert out == [a.sum() for a in arrays]

    def test_chunk_bounds_cover_items_exactly(self):
        ex = ParallelExecutor(ParallelConfig(workers=4, chunk_size=3))
        chunks = ex._chunks(10)
        assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]
        even = ParallelExecutor(ParallelConfig(workers=4))._chunks(10)
        assert even[0] == (0, 3) and even[-1][1] == 10


class TestNesting:
    @needs_fork
    def test_nested_fanout_degrades_to_serial(self):
        """A parallel map inside a forked worker must not fork again."""
        cfg = ParallelConfig(workers=2)

        def inner(i):
            return i + 100

        def outer(i):
            # runs inside a daemonic pool worker; must fall back to serial
            return ParallelExecutor(cfg).map(inner, [i, i + 1])

        out = ParallelExecutor(cfg).map(outer, list(range(4)))
        assert out == [[i + 100, i + 101] for i in range(4)]


class TestCounterMerging:
    @needs_fork
    def test_worker_counts_merge_into_parent(self):
        counter = get_registry().counter("test.exec.work_done")
        before = counter.value

        def work(i):
            get_registry().counter("test.exec.work_done").inc()
            return i

        ParallelExecutor(ParallelConfig(workers=2)).map(work, list(range(8)))
        assert counter.value - before == 8

    def test_thread_backend_counts_directly(self):
        counter = get_registry().counter("test.exec.thread_work")
        before = counter.value
        ParallelExecutor(ParallelConfig(workers=2, backend="thread")).map(
            lambda i: get_registry().counter("test.exec.thread_work").inc(),
            list(range(5)),
        )
        assert counter.value - before == 5
