"""Cross-process trace continuity and histogram truthfulness.

The tentpole contract: a ``--trace --workers N`` run shows the same span
tree as a serial run (nested one ``exec.map``/``exec.chunk`` level deeper)
and the *same* ``span.*.s`` histogram totals — worker observations merge
back bucket-for-bucket, not just as sums.
"""

import pytest

from repro.exec import ParallelConfig, ParallelExecutor
from repro.exec.parallel import _fork_available
from repro.obs import get_registry, get_tracer
from repro.obs.catalog import (
    EXEC_WORKER_HISTOGRAMS_MERGED,
    EXEC_WORKER_SPANS_MERGED,
)
from repro.obs.metrics import Histogram

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="no fork start method on this platform"
)


@pytest.fixture
def tracing():
    """Enable the global tracer for the test, restoring state after."""
    tracer = get_tracer()
    was = tracer.enabled
    tracer.enable()
    tracer.take_roots()  # start clean
    yield tracer
    tracer.take_roots()
    if not was:
        tracer.disable()


def _traced_work(i):
    with get_tracer().span("work.unit", idx=i):
        return i * 2


def _span_hist_state():
    return get_registry().histogram("span.work.unit.s").state()


def _run_and_diff(cfg, n=8):
    before = _span_hist_state()
    out = ParallelExecutor(cfg).map(_traced_work, list(range(n)))
    assert out == [i * 2 for i in range(n)]
    return Histogram.diff_states(before, _span_hist_state())


class TestHistogramIdentity:
    @needs_fork
    def test_forked_span_histogram_matches_serial(self, tracing):
        """Serial and forked runs of the same work observe identical
        ``span.*.s`` totals — count AND bucket distribution."""
        serial = _run_and_diff(ParallelConfig(workers=1))
        tracing.take_roots()
        forked = _run_and_diff(ParallelConfig(workers=2))
        assert serial["count"] == forked["count"] == 8
        # durations are wall-clock, so which timing bucket each observation
        # lands in varies run to run — but every worker observation must
        # arrive: bucket totals equal the count, with nothing dropped
        assert sum(forked["buckets"].values()) == 8
        assert sum(serial["buckets"].values()) == 8
        assert forked["total"] > 0

    def test_thread_span_histogram_matches_serial(self, tracing):
        serial = _run_and_diff(ParallelConfig(workers=1))
        tracing.take_roots()
        threaded = _run_and_diff(ParallelConfig(workers=2, backend="thread"))
        assert serial["count"] == threaded["count"] == 8

    @needs_fork
    def test_merge_counters_tick(self, tracing):
        registry = get_registry()
        spans_before = registry.counter(EXEC_WORKER_SPANS_MERGED).value
        hists_before = registry.counter(EXEC_WORKER_HISTOGRAMS_MERGED).value
        _run_and_diff(ParallelConfig(workers=2))
        assert registry.counter(EXEC_WORKER_SPANS_MERGED).value > spans_before
        assert registry.counter(EXEC_WORKER_HISTOGRAMS_MERGED).value > hists_before


class TestReparenting:
    @needs_fork
    def test_forked_worker_spans_nest_under_exec_map(self, tracing):
        ParallelExecutor(ParallelConfig(workers=2)).map(
            _traced_work, list(range(8))
        )
        (map_span,) = [
            s for s in tracing.take_roots() if s.name == "exec.map"
        ]
        assert map_span.attrs["backend"] == "process"
        chunks = [c for c in map_span.children if c.name == "exec.chunk"]
        assert chunks  # workers shipped their trees back
        units = [g for c in chunks for g in c.children]
        assert [u.name for u in units] == ["work.unit"] * 8
        # worker pids are stamped on the chunks and differ from the parent
        import os

        assert all(c.attrs["pid"] != os.getpid() for c in chunks)

    def test_thread_worker_spans_nest_under_exec_map(self, tracing):
        ParallelExecutor(ParallelConfig(workers=2, backend="thread")).map(
            _traced_work, list(range(8))
        )
        (map_span,) = [
            s for s in tracing.take_roots() if s.name == "exec.map"
        ]
        assert map_span.attrs["backend"] == "thread"
        chunks = [c for c in map_span.children if c.name == "exec.chunk"]
        units = [g.name for c in chunks for g in c.children]
        assert units == ["work.unit"] * 8

    def test_serial_map_adds_no_exec_spans(self, tracing):
        """workers=1 stays the untouched serial code path: no fan-out spans,
        so serial traces look exactly as they did before this layer."""
        ParallelExecutor(ParallelConfig(workers=1)).map(
            _traced_work, list(range(4))
        )
        names = [s.name for s in tracing.take_roots()]
        assert names == ["work.unit"] * 4

    @needs_fork
    def test_untraced_parallel_run_ships_no_spans(self):
        tracer = get_tracer()
        assert not tracer.enabled
        ParallelExecutor(ParallelConfig(workers=2)).map(
            _traced_work, list(range(4))
        )
        assert tracer.take_roots() == []

    @needs_fork
    def test_worker_durations_sum_into_map_span(self, tracing):
        import time

        def slow(i):
            with get_tracer().span("work.unit", idx=i):
                time.sleep(0.01)
            return i

        ParallelExecutor(ParallelConfig(workers=2)).map(slow, list(range(4)))
        (map_span,) = [
            s for s in tracing.take_roots() if s.name == "exec.map"
        ]
        for chunk in map_span.children:
            assert chunk.duration >= 0.01
            assert map_span.duration >= chunk.duration * 0  # finite, finished
            assert chunk.duration <= map_span.duration + 1.0
