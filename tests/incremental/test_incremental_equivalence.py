"""Incremental refresh must be indistinguishable from rebuilding from scratch.

Each test streams deltas into a deployed store and compares the refreshed
answer against a from-scratch rebuild of the *same* store: basic-search
profiles and rendered budget tables (the fig 7 configuration), cube entries
and cross-tabs (the fig 9 bookstore configuration), serial and with a
2-worker executor, and after K seeded random retract/re-append deltas.
The acceptance bar is bit-for-bit equality with ≥ 3× fewer operations.
Comparators come from :mod:`repro.verify` — the same diffing API the
differential conformance harness fuzzes with.
"""

import numpy as np
import pytest

from repro.core import (
    BasicBellwetherSearch,
    BellwetherCubeBuilder,
    budget_sweep,
    render_table,
)
from repro.datasets import make_bookstore, make_mailorder
from repro.exec import ParallelConfig
from repro.incremental import month_append_delta, month_split_store, window_end
from repro.ml import CrossValidationEstimator, TrainingSetEstimator
from repro.storage import BlockDelta, RegionBlock, StoreDelta
from repro.verify import (
    EXACT,
    assert_same_cube,
    assert_same_profile,
    assert_same_store,
    counters_snapshot,
    ops_delta,
    scans_delta,
)


class TestFig7BasicSearchEquivalence:
    """Mail-order + CV estimator: the fig 7 configuration, month by month."""

    @pytest.fixture
    def deployed(self):
        ds = make_mailorder(
            n_items=50, n_months=8, seed=0,
            error_estimator=CrossValidationEstimator(n_folds=3),
        )
        gen, regions, store = month_split_store(ds.task, base_month=6)
        search = BasicBellwetherSearch(ds.task, store)
        search.evaluate_all()
        return ds, gen, regions, store, search

    @pytest.mark.parametrize("workers", [None, 2])
    def test_month_append_refresh_matches_fresh_search(self, deployed, workers):
        ds, gen, regions, store, search = deployed
        parallel = ParallelConfig(workers=workers) if workers else None
        for month in (7, 8):
            store.apply_delta(month_append_delta(gen, regions, month))

            before = counters_snapshot()
            scratch = BasicBellwetherSearch(ds.task, store)
            scratch_profile = scratch.evaluate_all()
            scratch_ops = ops_delta(before)

            before = counters_snapshot()
            incr_profile = search.refresh(parallel=parallel)
            refresh_ops = ops_delta(before)
            assert scans_delta(before) == 0

            assert_same_profile(scratch_profile, incr_profile, EXACT)
            assert scratch_ops >= 3 * refresh_ops

            budgets = (10.0, 30.0, 60.0)
            assert render_table(budget_sweep(search, budgets)) == render_table(
                budget_sweep(scratch, budgets)
            )

    def test_delta_built_store_equals_fresh_generation(self, deployed):
        """After the append stream, block contents match a scratch build."""
        __, gen, regions, store, __ = deployed
        for month in (7, 8):
            store.apply_delta(month_append_delta(gen, regions, month))
        fresh = gen.generate(
            regions=[r for r in regions if window_end(r) <= 8]
        )
        assert set(store.regions()) == set(fresh.regions())
        assert_same_store(fresh, store, EXACT)


class TestFig9CubeEquivalence:
    """Bookstore (no planted bellwether) + cube maintainer: fig 9's config."""

    @pytest.fixture
    def deployed(self):
        ds = make_bookstore(
            n_items=60, n_months=8, seed=7,
            error_estimator=TrainingSetEstimator(),
        )
        gen, regions, store = month_split_store(ds.task, base_month=6)
        builder = BellwetherCubeBuilder(ds.task, store, ds.hierarchies)
        maintainer = builder.incremental()
        maintainer.refresh()
        return ds, gen, regions, store, builder, maintainer

    def test_month_append_refresh_matches_scratch_cube(self, deployed):
        ds, gen, regions, store, builder, maintainer = deployed
        for month in (7, 8):
            store.apply_delta(month_append_delta(gen, regions, month))

            before = counters_snapshot()
            scratch = BellwetherCubeBuilder(
                ds.task, store, ds.hierarchies
            ).build("optimized")
            scratch_ops = ops_delta(before)

            before = counters_snapshot()
            refreshed = maintainer.refresh()
            refresh_ops = ops_delta(before)
            assert scans_delta(before) == 0

            assert_same_cube(scratch, refreshed, EXACT)
            assert scratch_ops >= 3 * refresh_ops

            for level in sorted({s.level for s in refreshed.subsets}):
                assert refreshed.crosstab_text(level) == scratch.crosstab_text(
                    level
                )
                assert refreshed.crosstab_text(
                    level, show="error"
                ) == scratch.crosstab_text(level, show="error")

    def test_random_retract_reappend_deltas(self, deployed):
        """K seeded retract-then-re-append rounds stay bit-for-bit right."""
        ds, gen, regions, store, builder, maintainer = deployed
        rng = np.random.default_rng(42)
        region_pool = store.regions()
        for __ in range(4):
            region = region_pool[rng.integers(len(region_pool))]
            block = store.read(region)
            ids = np.unique(block.item_ids)
            victims = rng.choice(ids, size=min(3, len(ids)), replace=False)
            rows = np.isin(block.item_ids, victims)
            removed = RegionBlock(
                block.item_ids[rows], block.x[rows], block.y[rows],
                None if block.weights is None else block.weights[rows],
            )
            store.apply_delta(
                StoreDelta({region: BlockDelta(retract_ids=victims)})
            )
            store.apply_delta(
                StoreDelta({region: BlockDelta(append=removed)})
            )

            refreshed = maintainer.refresh()
            scratch = BellwetherCubeBuilder(
                ds.task, store, ds.hierarchies
            ).build("optimized")
            assert_same_cube(scratch, refreshed, EXACT)

    def test_drop_region_refresh_matches_scratch(self, deployed):
        ds, gen, regions, store, builder, maintainer = deployed
        victim = store.regions()[3]
        store.apply_delta(StoreDelta({}, drop_regions=(victim,)))
        refreshed = maintainer.refresh()
        scratch = BellwetherCubeBuilder(
            ds.task, store, ds.hierarchies
        ).build("optimized")
        assert_same_cube(scratch, refreshed, EXACT)
