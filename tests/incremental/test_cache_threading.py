"""Concurrent save/load on the persistent caches never serves torn state.

A writer thread walks the caches through versions 1..N while reader
threads hammer ``load_versioned`` / ``load``.  Every successful load must
return bits consistent with exactly one version (the content is a seeded
function of the version, so a meta/data mix is detectable); the only
acceptable failures are ``StorageError`` / ``StaleCacheError``.  This is
the regression test for the check-then-load races the query service
exposed: pre-fix, a load racing a save could pair version-k metadata with
version-k+1 arrays and silently patch forward from garbage.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.dimensions import Region
from repro.incremental import StaleCacheError, SuffStatsCache
from repro.ml import LinearSuffStats, StackedSuffStats, add_intercept
from repro.storage import StorageError
from repro.storage.cubetables import CubeTableStore, LevelTable

N_VERSIONS = 12
N_READERS = 8
N_CELLS = 3
P = 3


def _stack(n_cells: int, seed: int) -> StackedSuffStats:
    rng = np.random.default_rng(seed)
    stats = []
    for __ in range(n_cells):
        x = add_intercept(rng.normal(size=(6, P - 1)))
        y = rng.normal(size=6)
        stats.append(LinearSuffStats.from_data(x, y, rng.uniform(0.5, 2, 6)))
    return StackedSuffStats.from_stats(stats)


def _stacks_for(version: int) -> dict[Region, StackedSuffStats]:
    return {
        Region(("a",)): _stack(N_CELLS, seed=version * 2),
        Region(("b",)): _stack(N_CELLS, seed=version * 2 + 1),
    }


def test_load_versioned_during_concurrent_saves_is_never_torn(tmp_path, lockcheck):
    cache = SuffStatsCache(tmp_path)
    cache.save(version=0, stacks=_stacks_for(0), n_cells=N_CELLS, p=P)
    stop = threading.Event()
    loads = []

    def reader():
        count = 0
        while not stop.is_set():
            try:
                version, stacks = cache.load_versioned(n_cells=N_CELLS, p=P)
            except (StorageError, StaleCacheError):
                continue
            expected = _stacks_for(version)
            assert set(stacks) == set(expected), f"version {version}"
            for region, stack in stacks.items():
                want = expected[region]
                assert np.array_equal(stack.n, want.n)
                assert np.array_equal(stack.xtwx, want.xtwx)
                assert np.array_equal(stack.xtwy, want.xtwy)
            count += 1
        return count

    with ThreadPoolExecutor(max_workers=N_READERS) as pool:
        futures = [pool.submit(reader) for __ in range(N_READERS)]
        for version in range(1, N_VERSIONS + 1):
            cache.save(
                version=version,
                stacks=_stacks_for(version),
                n_cells=N_CELLS,
                p=P,
            )
        stop.set()
        loads = [f.result(timeout=60) for f in futures]
    assert sum(loads) > 0
    final_version, __ = cache.load_versioned(n_cells=N_CELLS, p=P)
    assert final_version == N_VERSIONS


def test_cube_tables_load_during_concurrent_saves_is_never_torn(tmp_path, lockcheck):
    table_store = CubeTableStore(tmp_path)
    signature = {"p": P, "geometry": "threading-test"}

    def tables_for(version: int) -> list[LevelTable]:
        return [
            LevelTable(
                level=(0,),
                regions=(Region(("a",)), Region(("b",))),
                keep_sidx=np.asarray([0], dtype=np.int64),
                stats=_stack(2, seed=version * 7),
            )
        ]

    table_store.save(tables_for(0), signature, version=0)
    stop = threading.Event()
    latest = [0]

    def reader():
        count = 0
        while not stop.is_set():
            guess = latest[0]
            try:
                tables = table_store.load(signature, expected_version=guess)
            except (StorageError, StaleCacheError):
                continue
            want = tables_for(guess)[0]
            got = tables[0]
            assert np.array_equal(got.stats.xtwx, want.stats.xtwx), (
                f"version {guess}"
            )
            assert np.array_equal(got.stats.n, want.stats.n)
            count += 1
        return count

    with ThreadPoolExecutor(max_workers=N_READERS) as pool:
        futures = [pool.submit(reader) for __ in range(N_READERS)]
        for version in range(1, N_VERSIONS + 1):
            table_store.save(tables_for(version), signature, version=version)
            latest[0] = version
        stop.set()
        counts = [f.result(timeout=60) for f in futures]
    assert sum(counts) > 0


def test_torn_pair_raises_instead_of_adopting(tmp_path):
    """A hand-torn meta/data pair (the pre-fix race, frozen) is refused."""
    cache = SuffStatsCache(tmp_path)
    cache.save(version=1, stacks=_stacks_for(1), n_cells=N_CELLS, p=P)
    meta_v1 = cache.meta_path.read_bytes()
    cache.save(version=2, stacks=_stacks_for(2), n_cells=N_CELLS, p=P)
    cache.meta_path.write_bytes(meta_v1)  # data at v2, metadata at v1
    with pytest.raises(StorageError, match="torn"):
        cache.load_versioned(n_cells=N_CELLS, p=P)
