"""Versioned stores: delta apply semantics, changelog, and history limits."""

import numpy as np
import pytest

from repro.dimensions import Region
from repro.storage import (
    BlockDelta,
    DiskStore,
    MemoryStore,
    RegionBlock,
    StorageError,
    StoreDelta,
    apply_block_delta,
)

A, B, C = Region(("a",)), Region(("b",)), Region(("c",))


def _block(ids, seed=0, p=2):
    ids = np.asarray(ids)
    rng = np.random.default_rng(seed)
    return RegionBlock(ids, rng.normal(size=(len(ids), p)), rng.normal(size=len(ids)))


@pytest.fixture
def store():
    return MemoryStore(
        {A: _block([0, 1, 2], seed=1), B: _block([3, 4], seed=2)},
        ("f0", "f1"),
    )


class TestApplyBlockDelta:
    def test_append_goes_at_the_end(self, store):
        old = _block([0, 1], seed=3)
        extra = _block([7, 8], seed=4)
        new, removed = apply_block_delta(old, BlockDelta(append=extra), 2)
        assert removed is None
        assert new.item_ids.tolist() == [0, 1, 7, 8]
        assert np.array_equal(new.x[:2], old.x)
        assert np.array_equal(new.x[2:], extra.x)

    def test_retract_preserves_surviving_order(self):
        old = _block([5, 3, 9, 3, 1], seed=5)
        new, removed = apply_block_delta(
            old, BlockDelta(retract_ids=np.array([3])), 2
        )
        assert new.item_ids.tolist() == [5, 9, 1]
        assert removed.item_ids.tolist() == [3, 3]
        keep = np.array([0, 2, 4])
        assert np.array_equal(new.x, old.x[keep])
        assert np.array_equal(new.y, old.y[keep])

    def test_retract_is_idempotent_for_missing_ids(self):
        old = _block([0, 1], seed=6)
        new, removed = apply_block_delta(
            old, BlockDelta(retract_ids=np.array([99])), 2
        )
        assert new.item_ids.tolist() == [0, 1]
        assert removed is None or removed.n_examples == 0

    def test_retract_then_append_in_one_delta(self):
        old = _block([0, 1, 2], seed=7)
        bd = BlockDelta(append=_block([9], seed=8), retract_ids=np.array([1]))
        new, removed = apply_block_delta(old, bd, 2)
        assert new.item_ids.tolist() == [0, 2, 9]
        assert removed.item_ids.tolist() == [1]

    def test_empty_delta_is_rejected(self):
        with pytest.raises(StorageError, match="empty BlockDelta"):
            BlockDelta()

    def test_append_to_unknown_region_is_the_whole_block(self):
        fresh = _block([4, 5], seed=9)
        new, removed = apply_block_delta(None, BlockDelta(append=fresh), 2)
        assert removed is None
        assert np.array_equal(new.x, fresh.x)

    def test_retract_from_unknown_region_is_an_error(self):
        with pytest.raises(StorageError):
            apply_block_delta(None, BlockDelta(retract_ids=np.array([1])), 2)


class TestStoreDelta:
    def test_region_cannot_be_both_changed_and_dropped(self):
        with pytest.raises(StorageError, match="both changed and dropped"):
            StoreDelta(
                {A: BlockDelta(append=_block([1]))}, drop_regions=(A,)
            )

    def test_touched_regions_and_n_appended(self):
        delta = StoreDelta(
            {A: BlockDelta(append=_block([1, 2])), C: BlockDelta(append=_block([3]))},
            drop_regions=(B,),
        )
        assert set(delta.touched_regions) == {A, B, C}
        assert delta.n_appended == 3


class TestMemoryStoreVersioning:
    def test_version_bumps_monotonically(self, store):
        assert store.version == 0
        v1 = store.apply_delta(StoreDelta({A: BlockDelta(append=_block([9]))}))
        v2 = store.apply_delta(StoreDelta({B: BlockDelta(retract_ids=np.array([3]))}))
        assert (v1, v2) == (1, 2)
        assert store.version == 2

    def test_changelog_records_removed_rows_and_new_regions(self, store):
        before_b = store.read(B)
        store.apply_delta(
            StoreDelta(
                {
                    B: BlockDelta(retract_ids=np.array([4])),
                    C: BlockDelta(append=_block([8, 9], seed=11)),
                }
            )
        )
        (applied,) = store.deltas_since(0)
        assert applied.version == 1
        assert applied.new_regions == (C,)
        removed = applied.removed[B]
        assert removed.item_ids.tolist() == [4]
        assert np.array_equal(removed.x, before_b.x[before_b.item_ids == 4])
        assert set(applied.touched_items(B).tolist()) == {4}
        assert set(applied.touched_items(C).tolist()) == {8, 9}

    def test_drop_region_records_the_whole_block(self, store):
        gone = store.read(A)
        store.apply_delta(StoreDelta({}, drop_regions=(A,)))
        assert A not in store.regions()
        (applied,) = store.deltas_since(0)
        assert np.array_equal(applied.removed[A].x, gone.x)

    def test_drop_unknown_region_is_an_error(self, store):
        with pytest.raises(StorageError, match="cannot drop unknown region"):
            store.apply_delta(StoreDelta({}, drop_regions=(C,)))
        assert store.version == 0

    def test_deltas_since_current_version_is_empty(self, store):
        store.apply_delta(StoreDelta({A: BlockDelta(append=_block([9]))}))
        assert store.deltas_since(store.version) == []

    def test_deltas_since_future_version_is_an_error(self, store):
        with pytest.raises(StorageError, match="ahead of the store"):
            store.deltas_since(5)

    def test_deltas_since_returns_suffix_in_order(self, store):
        for i in range(3):
            store.apply_delta(
                StoreDelta({A: BlockDelta(append=_block([10 + i], seed=20 + i))})
            )
        assert [d.version for d in store.deltas_since(1)] == [2, 3]


class TestDiskStoreVersioning:
    def test_delta_persists_across_reopen(self, tmp_path):
        store = DiskStore.create(
            tmp_path, {A: _block([0, 1], seed=1)}, ("f0", "f1")
        )
        store.apply_delta(
            StoreDelta(
                {
                    A: BlockDelta(append=_block([2], seed=2)),
                    B: BlockDelta(append=_block([3, 4], seed=3)),
                }
            )
        )
        reopened = DiskStore(tmp_path)
        assert reopened.version == 1
        assert set(reopened.regions()) == {A, B}
        assert reopened.read(A).item_ids.tolist() == [0, 1, 2]
        assert reopened.read(B).item_ids.tolist() == [3, 4]

    def test_reopen_forgets_the_changelog(self, tmp_path):
        store = DiskStore.create(
            tmp_path, {A: _block([0, 1], seed=1)}, ("f0", "f1")
        )
        store.apply_delta(StoreDelta({A: BlockDelta(append=_block([2]))}))
        assert len(store.deltas_since(0)) == 1
        reopened = DiskStore(tmp_path)
        # History below the persisted floor is gone: stale consumers must
        # be told to rebuild, not handed an empty "nothing changed" answer.
        with pytest.raises(StorageError, match="rebuild from a full scan"):
            reopened.deltas_since(0)
        assert reopened.deltas_since(1) == []

    def test_drop_region_deletes_the_block_file(self, tmp_path):
        store = DiskStore.create(
            tmp_path,
            {A: _block([0], seed=1), B: _block([1], seed=2)},
            ("f0", "f1"),
        )
        path = store._dir / store._files[A]
        store.apply_delta(StoreDelta({}, drop_regions=(A,)))
        assert not path.exists()
        assert DiskStore(tmp_path).regions() == [B]

    def test_disk_matches_memory_after_same_deltas(self, tmp_path):
        blocks = {A: _block([0, 1, 2], seed=1), B: _block([3, 4], seed=2)}
        mem = MemoryStore(blocks, ("f0", "f1"))
        disk = DiskStore.create(tmp_path, blocks, ("f0", "f1"))
        deltas = [
            StoreDelta({A: BlockDelta(retract_ids=np.array([1]))}),
            StoreDelta({C: BlockDelta(append=_block([7, 8], seed=3))}),
            StoreDelta({}, drop_regions=(B,)),
        ]
        for delta in deltas:
            mem.apply_delta(delta)
            disk.apply_delta(delta)
        assert mem.version == disk.version == 3
        assert set(mem.regions()) == set(disk.regions())
        for region in mem.regions():
            m, d = mem.read(region), disk.read(region)
            assert np.array_equal(m.item_ids, d.item_ids)
            assert np.array_equal(m.x, d.x)
            assert np.array_equal(m.y, d.y)
