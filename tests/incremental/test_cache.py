"""SuffStatsCache: round trips, warm starts, and staleness detection."""

import numpy as np
import pytest

from repro.core import BellwetherCubeBuilder
from repro.core.training_data import build_store
from repro.datasets import make_mailorder
from repro.dimensions import Region
from repro.incremental import StaleCacheError, SuffStatsCache
from repro.ml import (
    LinearSuffStats,
    StackedSuffStats,
    TrainingSetEstimator,
    add_intercept,
)
from repro.obs import get_registry


def _stack(n_cells, p, seed):
    rng = np.random.default_rng(seed)
    stats = []
    for __ in range(n_cells):
        x = add_intercept(rng.normal(size=(8, p - 1)))
        y = rng.normal(size=8)
        stats.append(LinearSuffStats.from_data(x, y, rng.uniform(0.5, 2, 8)))
    return StackedSuffStats.from_stats(stats)


def test_save_load_round_trip_is_bitwise(tmp_path):
    stacks = {
        Region(("a",)): _stack(4, 3, seed=1),
        Region(("b",)): _stack(4, 3, seed=2),
    }
    cache = SuffStatsCache(tmp_path)
    cache.save(version=5, stacks=stacks, n_cells=4, p=3)
    loaded = cache.load(expected_version=5, n_cells=4, p=3)
    assert set(loaded) == set(stacks)
    for region, stack in stacks.items():
        got = loaded[region]
        assert np.array_equal(got.n, stack.n)
        assert np.array_equal(got.sum_w, stack.sum_w)
        assert np.array_equal(got.ytwy, stack.ytwy)
        assert np.array_equal(got.xtwx, stack.xtwx)
        assert np.array_equal(got.xtwy, stack.xtwy)


def test_save_overwrites_previous_version(tmp_path):
    cache = SuffStatsCache(tmp_path)
    cache.save(version=1, stacks={Region(("a",)): _stack(2, 3, 1)}, n_cells=2, p=3)
    cache.save(version=2, stacks={Region(("a",)): _stack(2, 3, 9)}, n_cells=2, p=3)
    with pytest.raises(StaleCacheError):
        cache.load(expected_version=1, n_cells=2, p=3)
    assert set(cache.load(expected_version=2, n_cells=2, p=3)) == {Region(("a",))}


def test_stale_version_and_geometry(tmp_path):
    cache = SuffStatsCache(tmp_path)
    cache.save(version=1, stacks={Region(("a",)): _stack(2, 3, 1)}, n_cells=2, p=3)
    with pytest.raises(StaleCacheError):
        cache.load(expected_version=2, n_cells=2, p=3)
    with pytest.raises(StaleCacheError):
        cache.load(expected_version=1, n_cells=3, p=3)
    with pytest.raises(StaleCacheError):
        cache.load(expected_version=1, n_cells=2, p=4)


def test_warm_start_skips_the_full_scan(tmp_path):
    """A second maintainer over an unchanged store never touches the data."""
    ds = make_mailorder(
        n_items=60, n_months=6, seed=0, error_estimator=TrainingSetEstimator()
    )
    store, __, __ = build_store(ds.task)
    cache_dir = tmp_path / "cache"
    cold = BellwetherCubeBuilder(ds.task, store, ds.hierarchies).incremental(
        cache_dir=cache_dir
    )
    cold_result = cold.refresh()

    registry = get_registry()
    before = registry.counter_values()
    warm = BellwetherCubeBuilder(ds.task, store, ds.hierarchies).incremental(
        cache_dir=cache_dir
    )
    warm_result = warm.refresh()
    delta = registry.counter_values()
    assert delta.get("store.full_scans", 0) - before.get("store.full_scans", 0) == 0
    assert delta.get("incr.cache_hits", 0) - before.get("incr.cache_hits", 0) == 1

    assert warm_result.subsets == cold_result.subsets
    for subset in cold_result.subsets:
        a, b = cold_result.entry(subset), warm_result.entry(subset)
        assert a.region == b.region
        if a.error is not None:
            assert (a.error.rmse, a.error.sse, a.error.dof) == (
                b.error.rmse, b.error.sse, b.error.dof
            )
