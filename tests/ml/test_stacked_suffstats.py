"""Batched suff-stats kernel: bit-for-bit equal to the per-problem path.

The scan-oriented builders rely on :class:`StackedSuffStats` producing
*exactly* the numbers :class:`LinearSuffStats` would — not approximately:
winner selection compares RMSEs with ``<``, so a single ULP of drift could
flip a bellwether.  These tests pin the bitwise contract, including the
singular-matrix fallback.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    FitError,
    LinearSuffStats,
    StackedSuffStats,
    add_intercept,
)
from repro.obs import get_registry


def _random_stats(rng, n_problems, p=3, n_min=6, n_max=30, weighted=True):
    stats = []
    for __ in range(n_problems):
        n = int(rng.integers(n_min, n_max))
        x = add_intercept(rng.normal(size=(n, p - 1)))
        y = x @ rng.normal(size=p) + rng.normal(scale=0.3, size=n)
        w = rng.uniform(0.5, 2.0, size=n) if weighted else None
        stats.append(LinearSuffStats.from_data(x, y, w))
    return stats


@st.composite
def stats_batches(draw):
    seed = draw(st.integers(0, 10_000))
    n_problems = draw(st.integers(1, 12))
    p = draw(st.integers(2, 4))
    weighted = draw(st.booleans())
    rng = np.random.default_rng(seed)
    return _random_stats(rng, n_problems, p=p, weighted=weighted)


class TestBitForBit:
    @given(stats_batches())
    @settings(max_examples=40, deadline=None)
    def test_solve_sse_rmse_match_per_problem_exactly(self, stats):
        stack = StackedSuffStats.from_stats(stats)
        beta = stack.solve()
        sse = stack.sse()
        rmse = stack.rmse()
        for i, s in enumerate(stats):
            assert np.array_equal(beta[i], s.solve())
            assert sse[i] == s.sse()
            assert rmse[i] == s.rmse()

    @given(stats_batches(), st.floats(1e-6, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_ridge_matches_per_problem_exactly(self, stats, ridge):
        stack = StackedSuffStats.from_stats(stats)
        beta = stack.solve(ridge=ridge)
        for i, s in enumerate(stats):
            assert np.array_equal(beta[i], s.solve(ridge=ridge))

    def test_singular_problem_falls_back_like_scalar_path(self):
        rng = np.random.default_rng(1)
        good = _random_stats(rng, 3)
        # duplicate column -> exactly singular X'WX
        x = rng.normal(size=(10, 1))
        x = add_intercept(np.hstack([x, x]))
        y = rng.normal(size=10)
        singular = LinearSuffStats.from_data(x, y)
        assert np.linalg.matrix_rank(singular.xtwx) < singular.p
        stats = [good[0], singular, good[1], good[2]]
        stack = StackedSuffStats.from_stats(stats)
        beta = stack.solve()
        for i, s in enumerate(stats):
            assert np.array_equal(beta[i], s.solve())
        assert np.array_equal(stack.sse(), [s.sse() for s in stats])

    def test_interpolating_problem_matches_scalar_dof_fallback(self):
        rng = np.random.default_rng(2)
        # n == p: zero residual dof; mse falls back to dividing by n
        x = add_intercept(rng.normal(size=(3, 2)))
        y = rng.normal(size=3)
        tiny = LinearSuffStats.from_data(x, y)
        stack = StackedSuffStats.from_stats([tiny] + _random_stats(rng, 2))
        assert stack.mse()[0] == tiny.mse()
        assert stack.dof[0] == tiny.dof


class TestAlgebra:
    def test_merge_and_rollup_match_scalar_merge(self):
        rng = np.random.default_rng(3)
        stats = _random_stats(rng, 6)
        stack = StackedSuffStats.from_stats(stats)
        target = np.array([0, 1, 0, 2, 1, 0])
        rolled = stack.rollup(target, 3)
        for g in range(3):
            expect = LinearSuffStats.zeros(stats[0].p)
            for i in np.flatnonzero(target == g):
                expect = expect + stats[i]
            got = rolled.row(g)
            assert got.n == expect.n
            assert np.allclose(got.xtwx, expect.xtwx)
            assert np.allclose(got.xtwy, expect.xtwy)
            assert got.ytwy == pytest.approx(expect.ytwy)

    def test_row_select_concatenate_roundtrip(self):
        rng = np.random.default_rng(4)
        stats = _random_stats(rng, 5)
        stack = StackedSuffStats.from_stats(stats)
        assert len(stack) == 5
        sub = stack.select(np.array([4, 0, 2]))
        assert np.array_equal(sub.ytwy, stack.ytwy[[4, 0, 2]])
        both = StackedSuffStats.concatenate([sub, stack])
        assert len(both) == 8
        assert np.array_equal(both.xtwx[3:], stack.xtwx)
        merged = stack + stack
        assert np.array_equal(merged.n, stack.n * 2)

    def test_shape_mismatches_rejected(self):
        rng = np.random.default_rng(5)
        a = StackedSuffStats.from_stats(_random_stats(rng, 2, p=3))
        b = StackedSuffStats.from_stats(_random_stats(rng, 2, p=4))
        with pytest.raises(FitError):
            a + b
        with pytest.raises(FitError):
            StackedSuffStats.concatenate([a, b])
        with pytest.raises(FitError):
            StackedSuffStats.from_stats([])

    def test_zero_example_problem_rejected(self):
        stack = StackedSuffStats.zeros(2, 3)
        with pytest.raises(FitError):
            stack.solve()


class TestCounters:
    def test_one_batched_solve_per_call(self):
        rng = np.random.default_rng(6)
        stack = StackedSuffStats.from_stats(_random_stats(rng, 7))
        solves = get_registry().counter("ml.linear.batched_solves")
        problems = get_registry().counter("ml.linear.batched_problems")
        s0, p0 = solves.value, problems.value
        stack.solve()
        assert solves.value - s0 == 1
        assert problems.value - p0 == 7
