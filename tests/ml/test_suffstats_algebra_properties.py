"""Property-based tests for the suffstats *delta* algebra.

The incremental layer leans on three algebraic facts beyond Theorem 1's
merge: retraction inverts merge (``(s + d) - d == s``), merge order never
changes the answer beyond float associativity, and the stacked rollup is
the same sum the scalar path computes.  Seeded-random generators cover the
well-conditioned case and near-/exactly-singular blocks (duplicated
columns), where the pinv fallback must stay consistent between the scalar
and stacked solvers.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import LinearSuffStats, StackedSuffStats, add_intercept


@st.composite
def blocks(draw, singular_allowed=True):
    """One weighted design block; sometimes (near-)singular by construction."""
    n = draw(st.integers(4, 30))
    p = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, p))
    if singular_allowed and p >= 2 and draw(st.booleans()):
        # Duplicate a column (exactly singular) or almost duplicate it
        # (near-singular): the conditioning regimes the solver must survive.
        jitter = 0.0 if draw(st.booleans()) else 1e-9
        x[:, 1] = x[:, 0] * (1.0 + jitter)
    x = add_intercept(x)
    y = x @ rng.normal(size=p + 1) + rng.normal(scale=0.5, size=n)
    w = rng.uniform(0.5, 2.0, size=n)
    return x, y, w


def _assert_stats_close(a: LinearSuffStats, b: LinearSuffStats) -> None:
    assert a.n == b.n
    assert np.isclose(a.sum_w, b.sum_w, rtol=1e-9)
    assert np.isclose(a.ytwy, b.ytwy, rtol=1e-9, atol=1e-9)
    assert np.allclose(a.xtwx, b.xtwx, rtol=1e-9, atol=1e-9)
    assert np.allclose(a.xtwy, b.xtwy, rtol=1e-9, atol=1e-9)


@given(blocks(), st.data())
@settings(max_examples=60, deadline=None)
def test_merge_retract_round_trip(block, data):
    """(s + d) - d recovers s: retraction inverts merge."""
    x, y, w = block
    cut = data.draw(st.integers(1, len(y) - 1))
    s = LinearSuffStats.from_data(x[:cut], y[:cut], w[:cut])
    d = LinearSuffStats.from_data(x[cut:], y[cut:], w[cut:])
    back = (s + d) - d
    _assert_stats_close(back, s)


@given(blocks(), st.data())
@settings(max_examples=60, deadline=None)
def test_stacked_merge_retract_round_trip(block, data):
    """The stacked form of the round trip, over a random cell grouping."""
    x, y, w = block
    n_cells = data.draw(st.integers(1, 4))
    seed = data.draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    cells = rng.integers(0, n_cells, size=len(y))
    cut = data.draw(st.integers(1, len(y) - 1))
    s = StackedSuffStats.from_groups(
        x[:cut], y[:cut], w[:cut], cells[:cut], n_cells
    )
    d = StackedSuffStats.from_groups(
        x[cut:], y[cut:], w[cut:], cells[cut:], n_cells
    )
    back = (s + d) - d
    assert np.array_equal(back.n, s.n)
    assert np.allclose(back.ytwy, s.ytwy, rtol=1e-9, atol=1e-9)
    assert np.allclose(back.xtwx, s.xtwx, rtol=1e-9, atol=1e-9)
    assert np.allclose(back.xtwy, s.xtwy, rtol=1e-9, atol=1e-9)
    assert np.allclose(back.sum_w, s.sum_w, rtol=1e-9)


@given(blocks())
@settings(max_examples=60, deadline=None)
def test_merge_commutes_bitwise(block):
    """a + b and b + a are the *same bits*: float addition commutes."""
    x, y, w = block
    half = len(y) // 2
    a = LinearSuffStats.from_data(x[:half], y[:half], w[:half])
    b = LinearSuffStats.from_data(x[half:], y[half:], w[half:])
    ab, ba = a + b, b + a
    assert ab.ytwy == ba.ytwy
    assert np.array_equal(ab.xtwx, ba.xtwx)
    assert np.array_equal(ab.xtwy, ba.xtwy)
    assert (ab.n, ab.sum_w) == (ba.n, ba.sum_w)


@given(blocks())
@settings(max_examples=60, deadline=None)
def test_merge_associates_to_tolerance(block):
    x, y, w = block
    third = max(len(y) // 3, 1)
    a = LinearSuffStats.from_data(x[:third], y[:third], w[:third])
    b = LinearSuffStats.from_data(x[third:2 * third], y[third:2 * third], w[third:2 * third])
    c = LinearSuffStats.from_data(x[2 * third:], y[2 * third:], w[2 * third:])
    _assert_stats_close((a + b) + c, a + (b + c))


@given(blocks(), st.data())
@settings(max_examples=60, deadline=None)
def test_rollup_matches_scalar_sums(block, data):
    """StackedSuffStats.rollup == the dict-of-``+`` rollup, per target."""
    x, y, w = block
    n_cells = data.draw(st.integers(2, 6))
    n_out = data.draw(st.integers(1, 3))
    seed = data.draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    cells = rng.integers(0, n_cells, size=len(y))
    target = rng.integers(0, n_out, size=n_cells)
    stack = StackedSuffStats.from_groups(x, y, w, cells, n_cells)
    rolled = stack.rollup(target, n_out)
    for out in range(n_out):
        expected = LinearSuffStats.zeros(x.shape[1])
        for cell in np.flatnonzero(target == out):
            expected = expected + stack.row(cell)
        got = rolled.row(out)
        assert got.n == expected.n
        assert np.allclose(got.xtwx, expected.xtwx, rtol=1e-9, atol=1e-12)
        assert np.allclose(got.xtwy, expected.xtwy, rtol=1e-9, atol=1e-12)
        assert np.isclose(got.ytwy, expected.ytwy, rtol=1e-9, atol=1e-12)


@given(blocks(), st.data())
@settings(max_examples=40, deadline=None)
def test_rollup_consistent_with_per_row_stats(block, data):
    """Rolling every row up as its own problem reproduces from_data."""
    x, y, w = block
    n = len(y)
    per_row = StackedSuffStats.from_groups(x, y, w, np.arange(n), n)
    rolled = per_row.rollup(np.zeros(n, dtype=np.int64), 1).row(0)
    whole = LinearSuffStats.from_data(x, y, w)
    _assert_stats_close(rolled, whole)


@given(blocks())
@settings(max_examples=60, deadline=None)
def test_stacked_solve_matches_scalar_even_when_singular(block):
    """Per-problem solutions are identical bits, pinv fallback included."""
    x, y, w = block
    half = len(y) // 2
    stats = [
        LinearSuffStats.from_data(x[:half], y[:half], w[:half]),
        LinearSuffStats.from_data(x[half:], y[half:], w[half:]),
        LinearSuffStats.from_data(x, y, w),
    ]
    stack = StackedSuffStats.from_stats(stats)
    batched = stack.solve()
    for i, s in enumerate(stats):
        assert np.array_equal(batched[i], s.solve())
    assert np.array_equal(stack.sse(), np.array([s.sse() for s in stats]))


@given(blocks(), st.data())
@settings(max_examples=40, deadline=None)
def test_assign_and_changed_rows(block, data):
    """assign() writes exactly the rows changed_rows() then reports."""
    x, y, w = block
    n_cells = data.draw(st.integers(2, 5))
    seed = data.draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    cells = rng.integers(0, n_cells, size=len(y))
    stack = StackedSuffStats.from_groups(x, y, w, cells, n_cells)
    original = stack.copy()
    idx = np.unique(rng.integers(0, n_cells, size=2))
    replacement = StackedSuffStats.from_stats(
        [LinearSuffStats.from_data(x, y * 2.0, w) for __ in idx]
    )
    stack.assign(idx, replacement)
    changed = stack.changed_rows(original)
    # changed ⊆ idx (an assigned row that happens to equal the original
    # bit-for-bit is legitimately not "changed").
    assert np.isin(changed, idx).all()
    untouched = np.setdiff1d(np.arange(n_cells), idx)
    assert np.array_equal(stack.ytwy[untouched], original.ytwy[untouched])
    # copy() isolated the snapshot from the in-place writes.
    assert original.n.sum() == int(len(y))
