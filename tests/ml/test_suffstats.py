"""Unit tests for linear-model sufficient statistics (Theorem 1 machinery)."""

import numpy as np
import pytest

from repro.ml import FitError, LinearSuffStats, add_intercept, prefix_stats


@pytest.fixture()
def data():
    rng = np.random.default_rng(0)
    x = add_intercept(rng.normal(size=(40, 3)))
    beta = np.array([1.0, 2.0, -1.0, 0.5])
    y = x @ beta + rng.normal(scale=0.1, size=40)
    return x, y


class TestFromData:
    def test_shapes(self, data):
        x, y = data
        s = LinearSuffStats.from_data(x, y)
        assert s.xtwx.shape == (4, 4)
        assert s.xtwy.shape == (4,)
        assert s.n == 40
        assert s.sum_w == pytest.approx(40.0)

    def test_matches_matrix_formulas(self, data):
        x, y = data
        w = np.linspace(1, 2, 40)
        s = LinearSuffStats.from_data(x, y, w)
        W = np.diag(w)
        assert np.allclose(s.xtwx, x.T @ W @ x)
        assert np.allclose(s.xtwy, x.T @ W @ y)
        assert s.ytwy == pytest.approx(float(y @ W @ y))

    def test_bad_shapes_rejected(self):
        with pytest.raises(FitError):
            LinearSuffStats.from_data(np.zeros(3), np.zeros(3))
        with pytest.raises(FitError):
            LinearSuffStats.from_data(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(FitError):
            LinearSuffStats.from_data(np.zeros((3, 2)), np.zeros(3), np.zeros(4))

    def test_nonpositive_weights_rejected(self):
        with pytest.raises(FitError):
            LinearSuffStats.from_data(np.ones((2, 1)), np.ones(2), np.array([1.0, 0.0]))


class TestMerge:
    def test_partition_merge_equals_whole(self, data):
        """g(S1) + g(S2) == g(S1 ∪ S2) — the heart of Theorem 1."""
        x, y = data
        whole = LinearSuffStats.from_data(x, y)
        s1 = LinearSuffStats.from_data(x[:17], y[:17])
        s2 = LinearSuffStats.from_data(x[17:], y[17:])
        merged = s1 + s2
        assert np.allclose(merged.xtwx, whole.xtwx)
        assert np.allclose(merged.xtwy, whole.xtwy)
        assert merged.ytwy == pytest.approx(whole.ytwy)
        assert merged.n == whole.n

    def test_zeros_is_identity(self, data):
        x, y = data
        s = LinearSuffStats.from_data(x, y)
        z = LinearSuffStats.zeros(4)
        merged = s + z
        assert np.allclose(merged.xtwx, s.xtwx)
        assert merged.n == s.n

    def test_subtract_inverts_add(self, data):
        x, y = data
        s1 = LinearSuffStats.from_data(x[:20], y[:20])
        s2 = LinearSuffStats.from_data(x[20:], y[20:])
        recovered = (s1 + s2) - s2
        assert np.allclose(recovered.xtwx, s1.xtwx)
        assert recovered.n == s1.n

    def test_mismatched_p_rejected(self):
        with pytest.raises(FitError):
            LinearSuffStats.zeros(2) + LinearSuffStats.zeros(3)


class TestSolve:
    def test_recovers_true_beta(self, data):
        x, y = data
        beta = LinearSuffStats.from_data(x, y).solve()
        assert np.allclose(beta, [1.0, 2.0, -1.0, 0.5], atol=0.1)

    def test_weighted_solution_matches_direct_wls(self, data):
        x, y = data
        w = np.linspace(0.5, 3.0, 40)
        beta = LinearSuffStats.from_data(x, y, w).solve()
        W = np.diag(w)
        direct = np.linalg.solve(x.T @ W @ x, x.T @ W @ y)
        assert np.allclose(beta, direct)

    def test_unit_weights_reduce_to_ols(self, data):
        x, y = data
        b_none = LinearSuffStats.from_data(x, y).solve()
        b_ones = LinearSuffStats.from_data(x, y, np.ones(40)).solve()
        assert np.allclose(b_none, b_ones)

    def test_singular_falls_back_to_pinv(self):
        # Duplicate column -> singular normal matrix; must not raise.
        x = np.ones((5, 2))
        y = np.arange(5.0)
        beta = LinearSuffStats.from_data(x, y).solve()
        assert np.all(np.isfinite(beta))

    def test_empty_solve_rejected(self):
        with pytest.raises(FitError):
            LinearSuffStats.zeros(2).solve()

    def test_ridge_changes_solution(self, data):
        x, y = data
        s = LinearSuffStats.from_data(x, y)
        assert not np.allclose(s.solve(), s.solve(ridge=10.0))


class TestSse:
    def test_sse_matches_residuals(self, data):
        x, y = data
        s = LinearSuffStats.from_data(x, y)
        beta = s.solve()
        direct = float(((y - x @ beta) ** 2).sum())
        assert s.sse() == pytest.approx(direct, rel=1e-8)

    def test_weighted_sse_matches_residuals(self, data):
        x, y = data
        w = np.linspace(0.5, 2.0, 40)
        s = LinearSuffStats.from_data(x, y, w)
        beta = s.solve()
        direct = float((w * (y - x @ beta) ** 2).sum())
        assert s.sse() == pytest.approx(direct, rel=1e-8)

    def test_sse_nonnegative_on_perfect_fit(self):
        x = add_intercept(np.arange(10.0)[:, None])
        y = 3.0 + 2.0 * np.arange(10.0)
        s = LinearSuffStats.from_data(x, y)
        assert s.sse() == pytest.approx(0.0, abs=1e-8)

    def test_mse_uses_residual_dof(self, data):
        x, y = data
        s = LinearSuffStats.from_data(x, y)
        assert s.mse() == pytest.approx(s.sse() / (40 - 4))

    def test_mse_interpolating_model_stays_finite(self):
        x = add_intercept(np.array([[1.0], [2.0]]))
        y = np.array([1.0, 2.0])
        s = LinearSuffStats.from_data(x, y)
        assert np.isfinite(s.mse())


class TestPrefixStats:
    def test_prefix_matches_blockwise(self, data):
        x, y = data
        prefixes = prefix_stats(x, y)
        assert len(prefixes) == 41
        for k in (0, 1, 7, 40):
            direct = (
                LinearSuffStats.zeros(4)
                if k == 0
                else LinearSuffStats.from_data(x[:k], y[:k])
            )
            assert np.allclose(prefixes[k].xtwx, direct.xtwx)
            assert np.allclose(prefixes[k].xtwy, direct.xtwy)
            assert prefixes[k].ytwy == pytest.approx(direct.ytwy)
            assert prefixes[k].n == k

    def test_suffix_by_subtraction(self, data):
        x, y = data
        prefixes = prefix_stats(x, y)
        suffix = prefixes[-1] - prefixes[10]
        direct = LinearSuffStats.from_data(x[10:], y[10:])
        assert np.allclose(suffix.xtwx, direct.xtwx)
        assert suffix.sse() == pytest.approx(direct.sse(), rel=1e-6)
