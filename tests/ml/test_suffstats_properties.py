"""Property-based tests for Theorem 1: SSE is an algebraic aggregate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import LinearSuffStats, add_intercept


@st.composite
def regression_problems(draw):
    n = draw(st.integers(6, 40))
    p = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    x = add_intercept(rng.normal(size=(n, p)))
    beta = rng.normal(size=p + 1)
    y = x @ beta + rng.normal(scale=0.5, size=n)
    w = rng.uniform(0.5, 2.0, size=n)
    return x, y, w


@st.composite
def partitions(draw, n):
    """A random partition of range(n) into 1-4 non-empty blocks."""
    k = draw(st.integers(1, min(4, n)))
    labels = draw(
        st.lists(st.integers(0, k - 1), min_size=n, max_size=n).filter(
            lambda ls: len(set(ls)) == k
        )
    )
    return np.asarray(labels)


@given(regression_problems(), st.data())
@settings(max_examples=60, deadline=None)
def test_theorem1_sse_is_algebraic(problem, data):
    """q({g(S_k)}) == SSE(S) for any partition S_1..S_k of S."""
    x, y, w = problem
    labels = data.draw(partitions(len(y)))
    whole = LinearSuffStats.from_data(x, y, w)
    merged = LinearSuffStats.zeros(x.shape[1])
    for block in np.unique(labels):
        mask = labels == block
        merged = merged + LinearSuffStats.from_data(x[mask], y[mask], w[mask])
    assert np.allclose(merged.xtwx, whole.xtwx, atol=1e-8)
    assert np.allclose(merged.xtwy, whole.xtwy, atol=1e-8)
    assert np.isclose(merged.ytwy, whole.ytwy, atol=1e-8)
    # The algebraic q: solve + SSE from merged stats equals whole-data SSE.
    assert np.isclose(merged.sse(), whole.sse(), rtol=1e-6, atol=1e-6)


@given(regression_problems())
@settings(max_examples=60, deadline=None)
def test_g_has_fixed_size(problem):
    """g(S) is fixed-size: 1 + p*p + p numbers regardless of |S|."""
    x, y, w = problem
    s_small = LinearSuffStats.from_data(x[:3], y[:3], w[:3])
    s_large = LinearSuffStats.from_data(x, y, w)
    assert s_small.xtwx.shape == s_large.xtwx.shape
    assert s_small.xtwy.shape == s_large.xtwy.shape


@given(regression_problems())
@settings(max_examples=60, deadline=None)
def test_merge_is_commutative_and_associative(problem):
    x, y, w = problem
    third = len(y) // 3
    a = LinearSuffStats.from_data(x[:third], y[:third], w[:third])
    b = LinearSuffStats.from_data(x[third:2 * third], y[third:2 * third], w[third:2 * third])
    c = LinearSuffStats.from_data(x[2 * third:], y[2 * third:], w[2 * third:])
    ab_c = (a + b) + c
    c_ba = c + (b + a)
    assert np.allclose(ab_c.xtwx, c_ba.xtwx)
    assert np.allclose(ab_c.xtwy, c_ba.xtwy)
    assert np.isclose(ab_c.ytwy, c_ba.ytwy)


@given(regression_problems())
@settings(max_examples=60, deadline=None)
def test_sse_never_negative(problem):
    x, y, w = problem
    assert LinearSuffStats.from_data(x, y, w).sse() >= 0.0


@given(regression_problems())
@settings(max_examples=40, deadline=None)
def test_adding_examples_never_reduces_sse(problem):
    """Training SSE is monotone in the example set (same model family)."""
    x, y, w = problem
    half = len(y) // 2
    sse_half = LinearSuffStats.from_data(x[:half], y[:half], w[:half]).sse()
    sse_full = LinearSuffStats.from_data(x, y, w).sse()
    assert sse_full >= sse_half - 1e-8
