"""Tests for Gaussian naive Bayes and classification error estimators."""

import numpy as np
import pytest

from repro.ml import (
    ClassificationCVEstimator,
    FitError,
    GaussianNB,
    GaussianNBStats,
    NotFittedError,
    TrainingSetClassificationEstimator,
    misclassification_rate,
)


@pytest.fixture()
def blobs():
    rng = np.random.default_rng(1)
    x = np.vstack([rng.normal(0, 1, (80, 3)), rng.normal(4, 1, (80, 3))])
    y = np.array([0.0] * 80 + [1.0] * 80)
    return x, y


class TestGaussianNB:
    def test_separable_blobs(self, blobs):
        x, y = blobs
        model = GaussianNB().fit(x, y)
        assert (model.predict(x) == y).mean() > 0.95

    def test_predict_single_row(self, blobs):
        x, y = blobs
        model = GaussianNB().fit(x, y)
        assert model.predict(x[0]).shape == (1,)

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            GaussianNB().predict(np.zeros((1, 2)))

    def test_multiclass(self):
        rng = np.random.default_rng(2)
        x = np.vstack([rng.normal(c * 5, 1, (50, 2)) for c in range(3)])
        y = np.repeat([0.0, 1.0, 2.0], 50)
        model = GaussianNB().fit(x, y)
        assert (model.predict(x) == y).mean() > 0.95

    def test_single_class_predicts_it(self):
        x = np.random.default_rng(0).normal(size=(10, 2))
        y = np.full(10, 7.0)
        model = GaussianNB().fit(x, y)
        assert (model.predict(x) == 7.0).all()

    def test_constant_feature_no_crash(self):
        x = np.column_stack([np.ones(20), np.arange(20.0)])
        y = (np.arange(20) >= 10).astype(float)
        model = GaussianNB().fit(x, y)
        assert (model.predict(x) == y).mean() > 0.9


class TestStats:
    def test_from_data_shapes(self, blobs):
        x, y = blobs
        s = GaussianNBStats.from_data(x, y)
        assert s.classes == (0.0, 1.0)
        assert s.counts.tolist() == [80.0, 80.0]
        assert s.sums.shape == (2, 3)

    def test_merge_equals_whole(self, blobs):
        """The statistic is distributive: partition merge == whole."""
        x, y = blobs
        whole = GaussianNBStats.from_data(x, y)
        merged = (
            GaussianNBStats.from_data(x[:50], y[:50])
            + GaussianNBStats.from_data(x[50:], y[50:])
        )
        assert merged.classes == whole.classes
        assert np.allclose(merged.counts, whole.counts)
        assert np.allclose(merged.sums, whole.sums)
        assert np.allclose(merged.sumsq, whole.sumsq)

    def test_merge_with_disjoint_classes(self):
        rng = np.random.default_rng(3)
        xa, ya = rng.normal(size=(10, 2)), np.zeros(10)
        xb, yb = rng.normal(5, 1, (10, 2)), np.ones(10)
        merged = (
            GaussianNBStats.from_data(xa, ya) + GaussianNBStats.from_data(xb, yb)
        )
        assert merged.classes == (0.0, 1.0)
        assert merged.n == 20

    def test_fit_stats_equals_fit(self, blobs):
        x, y = blobs
        direct = GaussianNB().fit(x, y)
        via_stats = GaussianNB().fit_stats(GaussianNBStats.from_data(x, y))
        assert (direct.predict(x) == via_stats.predict(x)).all()

    def test_feature_mismatch_rejected(self):
        a = GaussianNBStats.zeros((0.0,), 2)
        b = GaussianNBStats.zeros((0.0,), 3)
        with pytest.raises(FitError):
            a + b

    def test_empty_stats_rejected(self):
        with pytest.raises(FitError):
            GaussianNB().fit_stats(GaussianNBStats.zeros((0.0,), 2))


class TestErrorEstimators:
    def test_rate_bounds(self, blobs):
        x, y = blobs
        est = ClassificationCVEstimator(n_folds=5, seed=0).estimate(x, y)
        assert 0.0 <= est.rmse <= 0.2
        assert est.kind == "cv"
        assert len(est.fold_rmses) == 5

    def test_training_rate(self, blobs):
        x, y = blobs
        est = TrainingSetClassificationEstimator().estimate(x, y)
        assert 0.0 <= est.rmse <= 0.1

    def test_deterministic(self, blobs):
        x, y = blobs
        a = ClassificationCVEstimator(seed=3).estimate(x, y).rmse
        b = ClassificationCVEstimator(seed=3).estimate(x, y).rmse
        assert a == b

    def test_rate_helper(self):
        assert misclassification_rate(
            np.array([0, 1, 1]), np.array([0, 0, 1])
        ) == pytest.approx(1 / 3)
        with pytest.raises(FitError):
            misclassification_rate(np.zeros(2), np.zeros(3))

    def test_bad_folds(self):
        with pytest.raises(ValueError):
            ClassificationCVEstimator(n_folds=1)


class TestClassificationBellwether:
    def test_basic_search_finds_separable_region(self):
        """A full classification bellwether task through the basic search."""
        from repro.core import BasicBellwetherSearch, DirectTask
        from repro.dimensions import Region
        from repro.storage import MemoryStore, RegionBlock
        from repro.table import Table

        rng = np.random.default_rng(5)
        n = 120
        items = Table({"item": np.arange(1, n + 1)})
        y = (rng.random(n) > 0.5).astype(float)
        regions = [Region((f"r{k}",)) for k in range(6)]
        informative = regions[2]
        blocks = {}
        for region in regions:
            if region == informative:
                x = y[:, None] * 4.0 + rng.normal(0, 0.5, (n, 1))
            else:
                x = rng.normal(0, 1, (n, 1))
            blocks[region] = RegionBlock(np.arange(1, n + 1), x, y)
        store = MemoryStore(blocks, ("signal",))
        task = DirectTask(
            items, "item", targets=y,
            error_estimator=ClassificationCVEstimator(n_folds=5, seed=0),
        )
        result = BasicBellwetherSearch(task, store, min_examples=10).run()
        assert result.bellwether.region == informative
        assert result.bellwether.rmse < 0.1  # misclassification rate
