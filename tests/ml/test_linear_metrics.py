"""Unit tests for LinearRegression and the error estimators."""

import numpy as np
import pytest

from repro.ml import (
    CrossValidationEstimator,
    ErrorEstimate,
    FitError,
    LinearRegression,
    LinearSuffStats,
    NotFittedError,
    TrainingSetEstimator,
    add_intercept,
    mse,
    rmse,
)


@pytest.fixture()
def noisy_line():
    rng = np.random.default_rng(42)
    x = rng.uniform(-5, 5, size=(200, 2))
    y = 3.0 + 1.5 * x[:, 0] - 2.0 * x[:, 1] + rng.normal(scale=0.5, size=200)
    return x, y


class TestLinearRegression:
    def test_recovers_coefficients(self, noisy_line):
        x, y = noisy_line
        model = LinearRegression().fit(x, y)
        assert np.allclose(model.coef, [3.0, 1.5, -2.0], atol=0.15)

    def test_predict_shape(self, noisy_line):
        x, y = noisy_line
        model = LinearRegression().fit(x, y)
        assert model.predict(x).shape == (200,)
        assert model.predict(x[0]).shape == (1,)

    def test_no_intercept(self):
        x = np.arange(10.0)[:, None]
        y = 2.0 * np.arange(10.0)
        model = LinearRegression(fit_intercept=False).fit(x, y)
        assert model.coef.shape == (1,)
        assert model.coef[0] == pytest.approx(2.0)

    def test_weighted_fit_prefers_heavy_points(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        # near-total weight on the first point pins the intercept near 0
        w = np.array([1e6, 1.0])
        model = LinearRegression().fit(np.vstack([x, [[0.0]]]), np.append(y, 5.0), np.append(w, 1.0))
        assert abs(model.predict(np.array([[0.0]]))[0]) < 0.1

    def test_fit_stats_equivalent_to_fit(self, noisy_line):
        x, y = noisy_line
        direct = LinearRegression().fit(x, y)
        stats = LinearSuffStats.from_data(add_intercept(x), y)
        via_stats = LinearRegression().fit_stats(stats)
        assert np.allclose(direct.coef, via_stats.coef)
        assert direct.training_rmse() == pytest.approx(via_stats.training_rmse())

    def test_unfitted_predict_rejected(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.zeros((1, 2)))

    def test_wrong_predict_width_rejected(self, noisy_line):
        x, y = noisy_line
        model = LinearRegression().fit(x, y)
        with pytest.raises(FitError):
            model.predict(np.zeros((1, 5)))

    def test_1d_x_rejected(self):
        with pytest.raises(FitError):
            LinearRegression().fit(np.zeros(3), np.zeros(3))


class TestPointMetrics:
    def test_mse_rmse(self):
        a = np.array([0.0, 0.0])
        b = np.array([3.0, 4.0])
        assert mse(a, b) == pytest.approx(12.5)
        assert rmse(a, b) == pytest.approx(np.sqrt(12.5))

    def test_shape_mismatch(self):
        with pytest.raises(FitError):
            mse(np.zeros(2), np.zeros(3))


class TestCrossValidation:
    def test_cv_close_to_noise_level(self, noisy_line):
        x, y = noisy_line
        est = CrossValidationEstimator(n_folds=10, seed=0).estimate(x, y)
        assert est.kind == "cv"
        assert est.rmse == pytest.approx(0.5, abs=0.1)
        assert len(est.fold_rmses) == 10

    def test_deterministic_given_seed(self, noisy_line):
        x, y = noisy_line
        e1 = CrossValidationEstimator(seed=7).estimate(x, y)
        e2 = CrossValidationEstimator(seed=7).estimate(x, y)
        assert e1.rmse == e2.rmse

    def test_different_seeds_differ(self, noisy_line):
        x, y = noisy_line
        e1 = CrossValidationEstimator(seed=1).estimate(x, y)
        e2 = CrossValidationEstimator(seed=2).estimate(x, y)
        assert e1.rmse != e2.rmse

    def test_small_datasets_fall_back(self):
        x = np.array([[1.0]])
        y = np.array([2.0])
        est = CrossValidationEstimator().estimate(x, y)
        assert est.kind == "training"

    def test_fewer_examples_than_folds(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(5, 1))
        y = rng.normal(size=5)
        est = CrossValidationEstimator(n_folds=10).estimate(x, y)
        assert len(est.fold_rmses) == 5  # leave-one-out

    def test_bad_fold_count(self):
        with pytest.raises(ValueError):
            CrossValidationEstimator(n_folds=1)


class TestTrainingSetEstimator:
    def test_matches_model_training_rmse(self, noisy_line):
        x, y = noisy_line
        est = TrainingSetEstimator().estimate(x, y)
        model = LinearRegression().fit(x, y)
        assert est.rmse == pytest.approx(model.training_rmse())
        assert est.kind == "training"

    def test_tracks_cv_for_linear_models(self, noisy_line):
        """The paper's Figure 7(c) claim: training error ~ CV error."""
        x, y = noisy_line
        cv = CrossValidationEstimator(seed=0).estimate(x, y)
        tr = TrainingSetEstimator().estimate(x, y)
        assert tr.rmse == pytest.approx(cv.rmse, rel=0.15)


class TestConfidenceIntervals:
    def test_cv_interval_contains_point(self, noisy_line):
        x, y = noisy_line
        est = CrossValidationEstimator(seed=0).estimate(x, y)
        lo, hi = est.interval(0.95)
        assert lo <= est.rmse <= hi
        assert est.contains(est.rmse)

    def test_wider_confidence_wider_interval(self, noisy_line):
        x, y = noisy_line
        est = CrossValidationEstimator(seed=0).estimate(x, y)
        lo95, hi95 = est.interval(0.95)
        lo99, hi99 = est.interval(0.99)
        assert lo99 <= lo95 and hi99 >= hi95

    def test_training_interval_from_chi2(self, noisy_line):
        x, y = noisy_line
        est = TrainingSetEstimator().estimate(x, y)
        lo, hi = est.interval(0.95)
        assert 0 < lo < est.rmse < hi

    def test_degenerate_interval(self):
        est = ErrorEstimate(rmse=1.0, kind="training")
        assert est.interval(0.95) == (1.0, 1.0)

    def test_bad_confidence_rejected(self):
        est = ErrorEstimate(rmse=1.0, kind="training")
        with pytest.raises(ValueError):
            est.interval(1.5)

    def test_zero_sse_interval(self):
        est = ErrorEstimate(rmse=0.0, kind="training", sse=0.0, dof=5)
        assert est.interval(0.95) == (0.0, 0.0)
