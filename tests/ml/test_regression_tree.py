"""Unit tests for the CART regression tree."""

import numpy as np
import pytest

from repro.ml import FitError, NotFittedError, RegressionTree


@pytest.fixture()
def step_data():
    """A step function: y = 0 for x<0, y = 10 for x>=0."""
    rng = np.random.default_rng(3)
    x = rng.uniform(-1, 1, size=(300, 1))
    y = np.where(x[:, 0] < 0, 0.0, 10.0) + rng.normal(scale=0.1, size=300)
    return x, y


class TestFit:
    def test_learns_step(self, step_data):
        x, y = step_data
        tree = RegressionTree(max_depth=3, min_leaf=5).fit(x, y)
        pred = tree.predict(np.array([[-0.5], [0.5]]))
        assert pred[0] == pytest.approx(0.0, abs=0.5)
        assert pred[1] == pytest.approx(10.0, abs=0.5)

    def test_depth_zero_is_mean(self, step_data):
        x, y = step_data
        tree = RegressionTree(max_depth=0).fit(x, y)
        assert tree.n_leaves == 1
        assert tree.predict(x)[0] == pytest.approx(y.mean())

    def test_constant_target_single_leaf(self):
        x = np.arange(20.0)[:, None]
        y = np.full(20, 7.0)
        tree = RegressionTree().fit(x, y)
        assert tree.n_leaves == 1
        assert tree.predict(x)[0] == 7.0

    def test_respects_max_depth(self, step_data):
        x, y = step_data
        tree = RegressionTree(max_depth=2, min_leaf=2).fit(x, y)
        assert tree.depth <= 2

    def test_min_leaf_respected(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(10, 1))
        y = rng.normal(size=10)
        tree = RegressionTree(max_depth=10, min_leaf=6).fit(x, y)
        assert tree.n_leaves == 1  # 10 rows can't split into two 6s

    def test_multifeature_picks_informative(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1, 1, size=(400, 3))
        y = np.where(x[:, 2] < 0.2, -5.0, 5.0)
        tree = RegressionTree(max_depth=1, min_leaf=5).fit(x, y)
        assert tree._root.feature == 2
        assert tree._root.threshold == pytest.approx(0.2, abs=0.1)

    def test_empty_fit_rejected(self):
        with pytest.raises(FitError):
            RegressionTree().fit(np.zeros((0, 1)), np.zeros(0))

    def test_bad_params_rejected(self):
        with pytest.raises(FitError):
            RegressionTree(max_depth=-1)
        with pytest.raises(FitError):
            RegressionTree(min_leaf=0)

    def test_unfitted_rejected(self):
        with pytest.raises(NotFittedError):
            RegressionTree().predict(np.zeros((1, 1)))

    def test_reduces_training_error_vs_mean(self, step_data):
        x, y = step_data
        tree = RegressionTree(max_depth=4, min_leaf=5).fit(x, y)
        sse_tree = float(((y - tree.predict(x)) ** 2).sum())
        sse_mean = float(((y - y.mean()) ** 2).sum())
        assert sse_tree < 0.1 * sse_mean
