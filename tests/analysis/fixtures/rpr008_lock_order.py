"""Deliberate RPR008 violations: one lock pair taken in both orders."""


class Shuttle:
    def __init__(self, a_lock, b_lock):
        self._a_lock = a_lock
        self._b_lock = b_lock

    def forward(self):
        with self._a_lock:
            with self._b_lock:  # expect: RPR008
                return 1

    def backward(self):
        with self._b_lock:
            with self._a_lock:  # expect: RPR008
                return 2
