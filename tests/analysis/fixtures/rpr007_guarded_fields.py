"""Deliberate RPR007 violations: guarded ServerState fields off-lock."""


class ServerState:
    def __init__(self, rw):
        self._rw = rw
        self._tables = None
        self._cube = None
        self._cube_version = -1
        self._models = {}

    def tables(self):
        return self._tables  # expect: RPR007

    def drop_cube(self):
        self._cube = None  # expect: RPR007

    def cache_model(self, key, model):
        with self._rw.read():
            self._models[key] = model  # expect: RPR007

    def snapshot(self):
        return self._snapshot_locked()  # expect: RPR007

    def warm(self):
        with self._rw.read():
            return self.refresh()  # expect: RPR007

    def refresh(self):
        with self._rw.write():
            self._tables = object()
            return self._snapshot_locked()

    def _snapshot_locked(self):
        return (self._tables, self._cube, dict(self._models))
