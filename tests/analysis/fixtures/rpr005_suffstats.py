"""Deliberate RPR005 violations: in-place suffstats component mutation."""

import numpy as np


def clobber(stack, cell, s):
    stack.ytwy[cell] = s.ytwy  # expect: RPR005


def drift(stack, s):
    stack.xtwx += s.xtwx  # expect: RPR005


def scatter(stack, target, other):
    np.add.at(stack.xtwy, target, other.xtwy)  # expect: RPR005


def fine(stack, other):
    return stack + other
