"""Deliberate RPR003 violations: draws from unseeded global RNG state."""

import random  # expect: RPR003

import numpy as np
from numpy.random import shuffle  # expect: RPR003


def draw(n):
    return np.random.normal(size=n)  # expect: RPR003


def reseed_global():
    np.random.seed(0)  # expect: RPR003


def unseeded_generator():
    return np.random.default_rng()  # expect: RPR003


def fine(seed, n):
    return np.random.default_rng(seed).normal(size=n)
