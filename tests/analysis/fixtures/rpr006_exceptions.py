"""Deliberate RPR006 violations: exception discipline."""


def swallow(fn):
    try:
        return fn()
    except Exception:  # expect: RPR006
        return None


def bare(fn):
    try:
        return fn()
    except:  # expect: RPR006
        return None


def reject(value):
    raise ValueError(f"bad {value}")  # expect: RPR006


def wrap_with_builtin(fn):
    try:
        return fn()
    except Exception as exc:
        raise RuntimeError("wrapped") from exc  # expect: RPR006


def fine(fn, error_type):
    try:
        return fn()
    except Exception as exc:
        raise error_type("wrapped") from exc
