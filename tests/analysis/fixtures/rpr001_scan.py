"""Deliberate RPR001 violations: store internals and raw npz I/O."""

import numpy as np


def peek(store, region):
    return store._blocks[region]  # expect: RPR001


def fetch(store, region):
    return store._fetch(region)  # expect: RPR001


def dump(path, block):
    np.savez(path, x=block.x)  # lint: ignore[RPR010]  # expect: RPR001


def slurp(path):
    return np.load(path)  # expect: RPR001


def map_columns(path):
    return np.memmap(path, dtype="float64", mode="r")  # expect: RPR001


def fine(store, region):
    return store.read(region)
