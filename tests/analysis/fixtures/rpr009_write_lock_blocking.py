"""Deliberate RPR009 violations: blocking work under the write lock."""

import time

import numpy as np


def _rebuild(store):
    return store.scan()


class Refresher:
    def __init__(self, rw, store):
        self._rw = rw
        self._store = store

    def adopt(self):
        with self._rw.write():
            time.sleep(0.1)  # expect: RPR009
            rows = self._store.scan()  # expect: RPR009
            return np.linalg.solve(rows, rows)  # expect: RPR009

    def rebuild(self):
        with self._rw.write():
            return _rebuild(self._store)  # expect: RPR009

    def peek(self):
        # Reads under the read lock may scan: readers do not stall readers.
        with self._rw.read():
            return self._store.scan()
