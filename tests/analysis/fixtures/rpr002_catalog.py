"""Deliberate RPR002 violations: metric names re-typed as raw literals."""


def register_known(registry):
    return registry.counter("store.full_scans")  # expect: RPR002


def register_typo(registry):
    return registry.counter("store.fullscans")  # expect: RPR002


def read_site(values):
    return values.get("ml.linear.fits", 0)  # expect: RPR002


def fine(registry, name):
    return registry.counter(name)
