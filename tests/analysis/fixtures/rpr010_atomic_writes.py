"""Deliberate RPR010 violations: in-place storage writes, a lost commit."""

import os

import numpy as np


def dump_manifest(path, payload):
    path.write_bytes(payload)  # expect: RPR010


def dump_arrays(path, x):
    np.savez(path, x=x)  # lint: ignore[RPR001]  # expect: RPR010


def dump_rows(path, rows):
    with path.open("wb") as f:  # expect: RPR010
        f.write(rows)


def forgotten_commit(path, payload):
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(payload)  # expect: RPR010


def committed(path, payload):
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(payload)
    os.replace(tmp, path)
