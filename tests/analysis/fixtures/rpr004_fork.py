"""Deliberate RPR004 violations: fork-unsafe fan-out."""

from multiprocessing import Pool  # expect: RPR004

RESULTS = []
TOTALS = {}
COUNT = 0


def _accumulate(item):
    RESULTS.append(item)
    return item


def _tally(item):
    TOTALS[item] = item
    return item


def _bump(item):
    global COUNT
    COUNT += 1
    return item


def _pure(item):
    return item + 1


def fan_out(executor, config, items):
    executor = ParallelExecutor(config)  # noqa: F821 - never executed
    executor.map(_accumulate, items)  # expect: RPR004
    executor.map(_tally, items)  # expect: RPR004
    executor.map(_bump, items)  # expect: RPR004
    return executor.map(_pure, items)


def raw_pool(items):
    pool = Pool(2)
    return pool.map(lambda i: i + 1, items)  # expect: RPR004
