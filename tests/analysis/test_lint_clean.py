"""The shipped tree is lint-clean — the pytest face of the invariant linter.

This is the successor of the regex seed lint that used to live in
``tests/conftest.py``: the suite fails the moment ``src/repro`` or ``tests``
violates any RPR rule, with the offending file:line in the failure message.
"""

from pathlib import Path

from repro.analysis import Engine

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_tree_is_lint_clean():
    findings = Engine(root=REPO_ROOT).run()
    assert not findings, "invariant lint failures:\n" + "\n".join(
        f.format() for f in findings
    )
