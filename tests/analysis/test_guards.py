"""The guard map machinery: classification, the lock graph, module guards.

The fixtures cover the rules end to end; these tests pin the shared
vocabulary underneath them — how ``with`` items map to canonical lock
names and modes, how the one-hop graph extraction sees call chains, and
that :data:`MODULE_GUARDS` binds module globals to their lock.
"""

import ast
import textwrap

from repro.analysis import Engine, Scope
from repro.analysis.guards import (
    MODULE_GUARDS,
    SERVE_INSTRUMENT,
    SERVE_STATE_RW,
    ModuleGuard,
    classify_lock_acquisition,
    extract_lock_edges,
)


def _scope(source: str, class_name=None):
    expr = ast.parse(source, mode="eval").body
    return classify_lock_acquisition(expr, class_name)


class TestClassification:
    def test_rw_protocol_on_server_state(self):
        read = _scope("self._rw.read()", "ServerState")
        write = _scope("self._rw.write()", "ServerState")
        assert (read.name, read.mode) == (SERVE_STATE_RW, "read")
        assert (write.name, write.mode) == (SERVE_STATE_RW, "write")
        assert not read.grants_write and write.grants_write

    def test_timeout_argument_is_the_same_scope(self):
        scope = _scope("self._rw.read(timeout=0.1)", "ServerState")
        assert (scope.name, scope.mode) == (SERVE_STATE_RW, "read")

    def test_instrument_global(self):
        scope = _scope("_INSTRUMENT_LOCK")
        assert (scope.name, scope.mode) == (SERVE_INSTRUMENT, "exclusive")
        assert scope.grants_write

    def test_generic_lock_suffix_fallback(self):
        scope = _scope("self._io_lock", "Anything")
        assert scope.name == "Anything._io_lock"

    def test_non_locks_are_none(self):
        assert _scope("self.store", "ServerState") is None
        assert _scope("open(path)") is None


class TestLockGraph:
    def test_nested_withs_record_edges(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                def f(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass
                """
            )
        )
        graph = extract_lock_edges(tree, "mod.py")
        assert ("<module>._a_lock", "<module>._b_lock") in graph.edges

    def test_one_call_hop_adds_edges(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                class C:
                    def outer(self):
                        with self._a_lock:
                            self.inner()

                    def inner(self):
                        with self._b_lock:
                            pass
                """
            )
        )
        graph = extract_lock_edges(tree, "mod.py")
        assert ("C._a_lock", "C._b_lock") in graph.edges

    def test_self_edges_are_skipped(self):
        tree = ast.parse(
            textwrap.dedent(
                """
                class ServerState:
                    def f(self):
                        with self._rw.read():
                            self.g()

                    def g(self):
                        with self._rw.write():
                            pass
                """
            )
        )
        assert extract_lock_edges(tree, "mod.py").edges == {}


class TestModuleGuards:
    def test_instrument_global_outside_lock_is_flagged(
        self, tmp_path, monkeypatch
    ):
        source = textwrap.dedent(
            """
            _HITS = None
            _MY_LOCK = None

            def bump():
                _HITS.inc()

            def bump_locked_properly():
                with _MY_LOCK:
                    _HITS.inc()
            """
        )
        path = tmp_path / "mod.py"
        path.write_text(source)
        monkeypatch.setitem(
            MODULE_GUARDS,
            "mod.py",
            ModuleGuard(
                lock_global="_MY_LOCK",
                lock_name="<module>._MY_LOCK",
                guarded=frozenset({"_HITS"}),
            ),
        )
        engine = Engine(root=tmp_path, scopes={"RPR007": Scope()})
        findings = [
            (f.line, f.rule_id)
            for f in engine.run([path])
            if f.rule_id == "RPR007"
        ]
        assert findings == [(6, "RPR007")]
