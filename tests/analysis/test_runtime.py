"""The runtime lock checker: order cycles, reentrancy, assertions.

The static rules (RPR007–RPR009) and this checker speak the same
canonical lock names, so a violation caught here reads identically to
its lint-time twin.  The headline property: a two-thread lock-order
inversion raises :class:`LockOrderError` deterministically *before*
blocking — the repro finishes instead of deadlocking.
"""

import json
import threading
import time

import pytest

from repro.analysis.runtime import (
    LockAssertionError,
    LockCheckError,
    LockOrderError,
    TrackedLock,
    assert_holds_read,
    assert_holds_write,
    disable_lockcheck,
    enable_lockcheck,
    get_lockchecker,
    set_lockchecker,
)
from repro.obs.metrics import get_registry
from repro.serve.locks import RWLock


@pytest.fixture()
def checker():
    installed = enable_lockcheck(strict=True)
    try:
        yield installed
    finally:
        disable_lockcheck()


def _edge_names(checker):
    return {(e["from"], e["to"]) for e in checker.snapshot()["edges"]}


class TestOrdering:
    def test_consistent_order_is_clean(self, checker):
        a, b = TrackedLock("t.a"), TrackedLock("t.b")
        for __ in range(3):
            with a:
                with b:
                    pass
        assert _edge_names(checker) == {("t.a", "t.b")}
        assert checker.snapshot()["violations"] == []

    def test_sequential_inversion_raises(self, checker):
        a, b = TrackedLock("s.a"), TrackedLock("s.b")
        with a:
            with b:
                pass
        with b:
            with pytest.raises(LockOrderError):
                with a:
                    pass

    def test_two_thread_inversion_raises_instead_of_deadlocking(self, checker):
        """The classic AB/BA interleave finishes, one side raising.

        t1 takes a and blocks on b; t2 holds b and tries a.  Without the
        checker this wedges both threads forever.  ``acquiring`` runs
        *before* blocking, so t2 sees the a→b edge t1 just recorded and
        raises out — releasing b and letting t1 through.
        """
        a, b = TrackedLock("inv.a"), TrackedLock("inv.b")
        t1_has_a = threading.Event()
        caught: list[Exception] = []

        def t1():
            with a:
                t1_has_a.set()
                with b:  # blocks until t2 bails out
                    pass

        def t2():
            assert t1_has_a.wait(5)
            with b:
                # Wait until t1's acquiring(b) has recorded the a→b edge
                # (it runs before t1 parks on the mutex we hold).
                deadline = time.monotonic() + 5
                while ("inv.a", "inv.b") not in _edge_names(checker):
                    assert time.monotonic() < deadline
                    time.sleep(0.005)
                try:
                    with a:
                        pass
                except LockOrderError as exc:
                    caught.append(exc)

        threads = [threading.Thread(target=t1), threading.Thread(target=t2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
            assert not t.is_alive(), "inversion repro deadlocked"
        assert len(caught) == 1
        kinds = [v["kind"] for v in checker.snapshot()["violations"]]
        assert kinds == ["order"]


class TestReentrancy:
    def test_reentrant_lock_nests(self, checker):
        lock = TrackedLock("re.ok", reentrant=True)
        with lock:
            with lock:
                pass
        assert checker.snapshot()["violations"] == []

    def test_nonreentrant_reacquire_raises(self, checker):
        lock = TrackedLock("re.bad")
        with lock:
            with pytest.raises(LockCheckError):
                lock.acquire()

    def test_rwlock_upgrade_raises(self, checker):
        """read → write on the same thread is the non-upgradable deadlock."""
        rw = RWLock(name="up.rw")
        with rw.read():
            with pytest.raises(LockCheckError):
                rw.acquire_write()
        # The failed upgrade left the lock usable.
        with rw.write():
            pass


class TestAssertions:
    def test_read_assert_satisfied_by_any_scope(self, checker):
        rw = RWLock(name="as.rw")
        with rw.read():
            assert_holds_read("as.rw")
        with rw.write():
            assert_holds_read("as.rw")
            assert_holds_write("as.rw")

    def test_write_assert_rejects_read_scope(self, checker):
        rw = RWLock(name="as2.rw")
        with rw.read():
            with pytest.raises(LockAssertionError):
                assert_holds_write("as2.rw")

    def test_assert_without_lock_raises(self, checker):
        with pytest.raises(LockAssertionError):
            assert_holds_read("as3.never")

    def test_asserts_are_noops_when_disabled(self):
        disable_lockcheck()
        assert_holds_read("nobody.home")
        assert_holds_write("nobody.home")


class TestLifecycle:
    def test_hooks_are_noops_when_disabled(self):
        disable_lockcheck()
        lock = TrackedLock("off.a")
        with lock:
            with lock.__class__("off.b"):
                pass
        assert get_lockchecker() is None

    def test_set_lockchecker_restores(self, checker):
        assert get_lockchecker() is checker
        set_lockchecker(None)
        assert get_lockchecker() is None
        set_lockchecker(checker)
        assert get_lockchecker() is checker

    def test_nonstrict_records_instead_of_raising(self):
        checker = enable_lockcheck(strict=False)
        try:
            a, b = TrackedLock("ns.a"), TrackedLock("ns.b")
            with a:
                with b:
                    pass
            with b:
                with a:  # inversion: recorded, not raised
                    pass
            kinds = [v["kind"] for v in checker.snapshot()["violations"]]
            assert kinds == ["order"]
        finally:
            disable_lockcheck()

    def test_counters_increment(self, checker):
        registry = get_registry()
        before = registry.as_dict()
        with TrackedLock("ct.a"):
            pass
        after = registry.as_dict()
        assert (
            after["analysis.lock.acquisitions"]
            > before.get("analysis.lock.acquisitions", 0)
        )

    def test_export_graph_round_trips(self, checker, tmp_path):
        a, b = TrackedLock("ex.a"), TrackedLock("ex.b")
        with a:
            with b:
                pass
        out = tmp_path / "lock-graph.json"
        checker.export_graph(out)
        payload = json.loads(out.read_text())
        assert {"from": "ex.a", "to": "ex.b", "count": 1} in payload["edges"]
        assert payload["violations"] == []
