"""Engine mechanics: suppressions, baselines, the CLI, parse failures."""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Engine,
    Scope,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.cli import main
from repro.analysis.engine import PARSE_ERROR_RULE, AnalysisError

REPO_ROOT = Path(__file__).resolve().parents[2]

# Everything-in-scope override so temp trees outside src/repro get linted.
_EVERYWHERE = {"RPR003": Scope(), "RPR006": Scope()}


def _write(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.write_text(source)
    return path


def _run(tmp_path: Path, source: str, scopes=None):
    path = _write(tmp_path, "mod.py", source)
    engine = Engine(root=tmp_path, scopes=scopes or _EVERYWHERE)
    return engine.run([path])


UNSEEDED = "import numpy as np\n\ndef f():\n    return np.random.normal()\n"


class TestSuppressions:
    def test_violation_is_reported(self, tmp_path):
        findings = _run(tmp_path, UNSEEDED)
        assert [(f.line, f.rule_id) for f in findings] == [(4, "RPR003")]

    def test_rule_specific_suppression(self, tmp_path):
        findings = _run(
            tmp_path,
            UNSEEDED.replace(
                "np.random.normal()",
                "np.random.normal()  # lint: ignore[RPR003]",
            ),
        )
        assert findings == []

    def test_bare_suppression_covers_every_rule(self, tmp_path):
        findings = _run(
            tmp_path,
            UNSEEDED.replace(
                "np.random.normal()", "np.random.normal()  # lint: ignore"
            ),
        )
        assert findings == []

    def test_suppression_for_another_rule_does_not_hide(self, tmp_path):
        findings = _run(
            tmp_path,
            UNSEEDED.replace(
                "np.random.normal()",
                "np.random.normal()  # lint: ignore[RPR001]",
            ),
        )
        assert [f.rule_id for f in findings] == ["RPR003"]

    def test_suppression_on_other_line_does_not_hide(self, tmp_path):
        findings = _run(
            tmp_path, "# lint: ignore[RPR003]\n" + UNSEEDED
        )
        assert [f.rule_id for f in findings] == ["RPR003"]


class TestBaseline:
    def test_round_trip_silences_and_reappears(self, tmp_path):
        findings = _run(tmp_path, UNSEEDED)
        assert findings
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        baseline = load_baseline(baseline_path)
        assert apply_baseline(findings, baseline) == []
        # A *new* violation is not grandfathered.
        more = _run(
            tmp_path, UNSEEDED + "\ndef g():\n    return np.random.rand()\n"
        )
        fresh = apply_baseline(more, baseline)
        assert [f.line for f in fresh] == [7]

    def test_baseline_is_line_insensitive(self, tmp_path):
        findings = _run(tmp_path, UNSEEDED)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        shifted = _run(tmp_path, "\n\n" + UNSEEDED)
        assert apply_baseline(shifted, load_baseline(baseline_path)) == []

    def test_unreadable_baseline_raises(self, tmp_path):
        bad = _write(tmp_path, "baseline.json", "{not json")
        with pytest.raises(AnalysisError):
            load_baseline(bad)


class TestParseErrors:
    def test_unparsable_file_is_a_finding(self, tmp_path):
        path = _write(tmp_path, "mod.py", "def broken(:\n")
        findings = Engine(root=tmp_path).run([path])
        assert [f.rule_id for f in findings] == [PARSE_ERROR_RULE]


def _tree(tmp_path: Path, source: str = UNSEEDED) -> Path:
    """A minimal repo-shaped tree the CLI's default roots pick up."""
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "mod.py").write_text(source)
    return tmp_path


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _tree(tmp_path, "x = 1\n")
        assert main(["--root", str(tmp_path)]) == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one_text(self, tmp_path, capsys):
        _tree(tmp_path)
        assert main(["--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "src/repro/mod.py:4: RPR003" in out

    def test_findings_json(self, tmp_path, capsys):
        _tree(tmp_path)
        assert main(["--root", str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "RPR003"
        assert payload["findings"][0]["path"] == "src/repro/mod.py"

    def test_rule_filter(self, tmp_path):
        _tree(tmp_path)
        assert main(["--root", str(tmp_path), "--rule", "RPR006"]) == 0
        assert main(["--root", str(tmp_path), "--rule", "RPR003"]) == 1

    def test_unknown_rule_exits_two(self, tmp_path):
        _tree(tmp_path)
        assert main(["--root", str(tmp_path), "--rule", "RPR999"]) == 2

    def test_baseline_workflow(self, tmp_path):
        _tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["--root", str(tmp_path), "--write-baseline", str(baseline)]
        ) == 0
        assert main(
            ["--root", str(tmp_path), "--baseline", str(baseline)]
        ) == 0

    def test_github_format_emits_error_annotations(self, tmp_path, capsys):
        _tree(tmp_path)
        assert main(["--root", str(tmp_path), "--format", "github"]) == 1
        out = capsys.readouterr().out
        assert out.startswith(
            "::error file=src/repro/mod.py,line=4,title=RPR003::"
        )
        # Workflow-command data is newline/percent escaped.
        assert "\n::" not in out.rstrip("\n")[1:]

    def test_github_format_clean_tree_prints_nothing(self, tmp_path, capsys):
        _tree(tmp_path, "x = 1\n")
        assert main(["--root", str(tmp_path), "--format", "github"]) == 0
        assert capsys.readouterr().out == ""

    def test_stale_baseline_warns_without_changing_exit(
        self, tmp_path, capsys
    ):
        root = _tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(
            ["--root", str(root), "--write-baseline", str(baseline)]
        ) == 0
        # Fix the violation: its baseline entry is now stale.
        (root / "src" / "repro" / "mod.py").write_text("x = 1\n")
        assert main(["--root", str(root), "--baseline", str(baseline)]) == 0
        assert "stale baseline entr" in capsys.readouterr().err

    def test_prune_baseline_rewrites_the_file(self, tmp_path, capsys):
        root = _tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        main(["--root", str(root), "--write-baseline", str(baseline)])
        (root / "src" / "repro" / "mod.py").write_text("x = 1\n")
        assert main(
            [
                "--root", str(root),
                "--baseline", str(baseline),
                "--prune-baseline",
            ]
        ) == 0
        assert "pruned 1 stale entry" in capsys.readouterr().err
        assert json.loads(baseline.read_text())["findings"] == []
        # A second run is quiet: nothing stale remains.
        assert main(["--root", str(root), "--baseline", str(baseline)]) == 0
        assert "stale" not in capsys.readouterr().err

    def test_prune_without_baseline_exits_two(self, tmp_path):
        _tree(tmp_path)
        assert main(["--root", str(tmp_path), "--prune-baseline"]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for n in range(1, 11):
            assert f"RPR{n:03d}" in out

    def test_shipped_tree_is_clean_via_cli(self, capsys):
        assert main(["--root", str(REPO_ROOT)]) == 0
