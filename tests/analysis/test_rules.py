"""Every rule is demonstrated by a fixture of known violations.

Each ``fixtures/rprNNN_*.py`` file marks its deliberate violations with
``# expect: RPRNNN`` comments.  For each fixture we assert that running the
full rule set reports exactly the marked (line, rule) pairs — no misses, no
extras from other rules — and that disabling the fixture's rule silences
the file entirely (so each finding is attributable to its rule alone).
"""

import re
from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, Engine, Scope
from repro.analysis.rules import get_rules

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE_DIR = Path(__file__).parent / "fixtures"
FIXTURES = sorted(FIXTURE_DIR.glob("rpr*.py"))

_EXPECT_RE = re.compile(r"#\s*expect:\s*(RPR\d+)")

# Every rule scoped everywhere, so fixtures outside the production scopes
# (and inside the engine's global fixture exclude) still get linted.
_ALL_SCOPES = {rule.rule_id: Scope() for rule in ALL_RULES}


def _expected(path: Path) -> list[tuple[int, str]]:
    out = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = _EXPECT_RE.search(line)
        if match:
            out.append((lineno, match.group(1)))
    return out


def test_every_rule_has_a_fixture():
    covered = {_expected(path)[0][1] for path in FIXTURES}
    assert covered == {rule.rule_id for rule in ALL_RULES}


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_fixture_triggers_exactly_its_markers(path):
    expected = _expected(path)
    assert expected, f"fixture {path.name} has no # expect markers"
    engine = Engine(root=REPO_ROOT, scopes=_ALL_SCOPES, excludes=())
    found = [(f.line, f.rule_id) for f in engine.run([path])]
    assert found == expected


@pytest.mark.parametrize("path", FIXTURES, ids=lambda p: p.stem)
def test_fixture_is_silent_with_its_rule_disabled(path):
    rule_id = _expected(path)[0][1]
    others = [rule for rule in ALL_RULES if rule.rule_id != rule_id]
    engine = Engine(
        root=REPO_ROOT, rules=others, scopes=_ALL_SCOPES, excludes=()
    )
    assert engine.run([path]) == []


def test_get_rules_rejects_unknown_ids():
    from repro.analysis import AnalysisError

    with pytest.raises(AnalysisError):
        get_rules(["RPR999"])
