"""Lemma 1: the RF bellwether tree equals the naive bellwether tree."""

import pytest

from repro.core import BellwetherTreeBuilder
from repro.verify import assert_same_tree


@pytest.fixture(scope="module", params=["prefix", "refit"])
def builders(request, small_task, small_store):
    store, __, __ = small_store
    kwargs = dict(
        split_attrs=("category", "rd"),
        min_items=8,
        max_depth=2,
        max_numeric_splits=3,
        use_prefix_stats=request.param == "prefix",
    )
    return BellwetherTreeBuilder(small_task, store, **kwargs)


class TestLemma1:
    def test_rf_equals_naive(self, builders):
        rf = builders.build(method="rf")
        naive = builders.build(method="naive")
        assert_same_tree(rf.root, naive.root)

    def test_leaf_regions_agree(self, builders):
        rf = builders.build(method="rf")
        naive = builders.build(method="naive")
        rf_leaves = {
            tuple(sorted(l.item_ids)): l.region for l in rf.leaves()
        }
        naive_leaves = {
            tuple(sorted(l.item_ids)): l.region for l in naive.leaves()
        }
        assert rf_leaves == naive_leaves


class TestPrefixStatsAblation:
    def test_fast_numeric_path_matches_refit(self, small_task, small_store):
        """The prefix-suff-stats numeric evaluation changes nothing."""
        store, __, __ = small_store
        kwargs = dict(
            split_attrs=("category", "rd"),
            min_items=8,
            max_depth=2,
            max_numeric_splits=3,
        )
        fast = BellwetherTreeBuilder(
            small_task, store, use_prefix_stats=True, **kwargs
        ).build("rf")
        slow = BellwetherTreeBuilder(
            small_task, store, use_prefix_stats=False, **kwargs
        ).build("rf")
        assert_same_tree(fast.root, slow.root)
