"""WLS end-to-end: per-item weights flow from task to models (Section 6.4)."""

import numpy as np
import pytest

from repro.core import (
    AggregateTargetQuery,
    BasicBellwetherSearch,
    BellwetherTask,
    FactAggregate,
    TaskError,
    TrainingDataGenerator,
)
from repro.ml import LinearSuffStats, TrainingSetEstimator, add_intercept
from repro.table import Table


@pytest.fixture(scope="module")
def weighted_task(small_db, small_space):
    rng = np.random.default_rng(9)
    items = Table(
        {
            "item": np.arange(1, 31),
            "rd": rng.normal(size=30),
            "importance": rng.uniform(0.5, 3.0, 30),
        }
    )
    return BellwetherTask(
        small_db,
        small_space,
        items,
        "item",
        target=AggregateTargetQuery("sum", "profit", "item"),
        regional_features=[FactAggregate("sum", "profit", "reg_profit")],
        item_feature_attrs=("rd",),
        error_estimator=TrainingSetEstimator(),
        weight_column="importance",
    )


class TestWeightPlumbing:
    def test_weights_exposed(self, weighted_task):
        w = weighted_task.item_weights
        assert w is not None and (w > 0).all()

    def test_blocks_carry_weights(self, weighted_task):
        gen = TrainingDataGenerator(weighted_task)
        store = gen.generate(regions=gen.all_regions()[:3])
        for region in store.regions():
            block = store._fetch(region)
            assert block.weights is not None
            assert block.weights.shape == (block.n_examples,)

    def test_restrict_keeps_alignment(self, weighted_task):
        gen = TrainingDataGenerator(weighted_task)
        region = gen.all_regions()[0]
        block = gen.generate(regions=[region])._fetch(region)
        sub = block.restrict_to(block.item_ids[:5])
        w_of = dict(zip(block.item_ids, block.weights))
        for item, w in zip(sub.item_ids, sub.weights):
            assert w == w_of[item]

    def test_search_uses_weighted_errors(self, weighted_task):
        """Weighted and unweighted searches disagree on region errors."""
        gen = TrainingDataGenerator(weighted_task)
        store = gen.generate()
        weighted = {
            r.region: r.rmse
            for r in BasicBellwetherSearch(weighted_task, store).evaluate_all()
        }
        # same data, unit weights
        unweighted_task = BellwetherTask(
            weighted_task.db,
            weighted_task.space,
            weighted_task.item_table,
            "item",
            target=weighted_task.target,
            regional_features=weighted_task.regional_features,
            item_feature_attrs=weighted_task.item_feature_attrs,
            error_estimator=TrainingSetEstimator(),
        )
        store_u = TrainingDataGenerator(unweighted_task).generate()
        unweighted = {
            r.region: r.rmse
            for r in BasicBellwetherSearch(unweighted_task, store_u).evaluate_all()
        }
        diffs = [
            abs(weighted[r] - unweighted[r])
            for r in set(weighted) & set(unweighted)
        ]
        assert max(diffs) > 1e-9

    def test_weighted_error_matches_manual_wls(self, weighted_task):
        gen = TrainingDataGenerator(weighted_task)
        region = weighted_task.space.region(4, "All")
        block = gen.generate(regions=[region])._fetch(region)
        stats = LinearSuffStats.from_data(
            add_intercept(block.x), block.y, block.weights
        )
        est = weighted_task.error_estimator.estimate(
            block.x, block.y, block.weights
        )
        assert est.rmse == pytest.approx(stats.rmse())

    def test_nonpositive_weights_rejected(self, small_db, small_space):
        items = Table({"item": [1, 2], "w": [1.0, 0.0]})
        with pytest.raises(TaskError):
            BellwetherTask(
                small_db,
                small_space,
                items,
                "item",
                target=AggregateTargetQuery("sum", "profit", "item"),
                regional_features=[FactAggregate("sum", "profit", "f")],
                weight_column="w",
            )

    def test_direct_task_weights_validated(self):
        from repro.core import DirectTask

        items = Table({"item": [1, 2]})
        with pytest.raises(TaskError):
            DirectTask(items, "item", targets=np.ones(2), weights=np.array([1.0, -1.0]))
        task = DirectTask(
            items, "item", targets=np.ones(2), weights=np.array([1.0, 2.0])
        )
        assert list(task.item_weights) == [1.0, 2.0]
