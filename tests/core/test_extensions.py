"""Tests for the Section 3.4 extensions and the linear criterion."""

import numpy as np
import pytest

from repro.core import (
    BasicBellwetherSearch,
    BellwetherTask,
    GreedyCombinationSearch,
    LinearCriterion,
    MultiInstanceBellwetherSearch,
    SearchError,
    TaskError,
    TrainingDataGenerator,
    enumerate_candidate_features,
    select_features,
)
from repro.dimensions import RegionSpace, WindowedIntervalDimension
from repro.ml import TrainingSetEstimator

from .conftest import N_WEEKS, STATES


@pytest.fixture(scope="module")
def cell_costs():
    return {(t, s): 1.0 for t in range(1, N_WEEKS + 1) for s in STATES}


class TestLinearCriterion:
    def test_weights_validated(self):
        with pytest.raises(TaskError):
            LinearCriterion(w_cost=-1.0)

    def test_admits_everything(self):
        c = LinearCriterion(w_cost=1.0)
        assert c.admits(1e12, 0.0)

    def test_objective(self):
        c = LinearCriterion(w_cost=2.0, w_coverage=3.0)
        assert c.objective(10.0, 1.0, 0.5) == pytest.approx(10.0 + 2.0 - 1.5)

    def test_budget_override_is_identity(self):
        c = LinearCriterion(w_cost=1.0)
        assert c.with_budget(5.0) is c

    def test_search_trades_error_for_cost(self, small_task, small_store):
        """A huge cost weight pushes the search off the expensive optimum."""
        store, costs, __ = small_store
        free = small_task.with_criterion(LinearCriterion(w_cost=0.0))
        search_free = BasicBellwetherSearch(free, store, costs=costs)
        unconstrained = search_free.run().bellwether.region
        priced = small_task.with_criterion(LinearCriterion(w_cost=1e5))
        search_priced = BasicBellwetherSearch(priced, store, costs=costs)
        frugal = search_priced.run().bellwether
        assert costs[frugal.region] <= costs[unconstrained]
        assert costs[frugal.region] == min(
            r.cost for r in search_priced.run().feasible
        )


class TestCombinatorial:
    @pytest.fixture(scope="class")
    def search(self, small_task, small_generator, cell_costs):
        return GreedyCombinationSearch(small_task, small_generator, cell_costs)

    def test_single_region_seed_matches_basic_shape(self, search):
        result = search.run(budget=4.0, max_regions=1)
        assert len(result.regions) == 1
        assert result.cost <= 4.0

    def test_combination_never_worse_than_seed(self, search):
        seed = search.run(budget=8.0, max_regions=1)
        grown = search.run(budget=8.0, max_regions=3)
        assert grown.rmse <= seed.rmse + 1e-9

    def test_budget_respected_on_union_cells(self, search):
        result = search.run(budget=6.0, max_regions=3)
        assert result.cost <= 6.0
        # overlap is not double-charged: evaluating the same region twice
        # costs the same as once
        single = search.evaluate([result.regions[0]])
        doubled = search.evaluate([result.regions[0], result.regions[0]])
        assert doubled.cost == pytest.approx(single.cost)

    def test_unknown_region_rejected(self, search, small_task):
        from repro.dimensions import Region

        with pytest.raises(SearchError):
            search.evaluate([Region(("ghost",))])

    def test_impossible_budget(self, search):
        with pytest.raises(SearchError):
            search.run(budget=0.0)

    def test_empty_cell_costs_rejected(self, small_task, small_generator):
        with pytest.raises(SearchError):
            GreedyCombinationSearch(small_task, small_generator, {})


class TestMultiInstance:
    @pytest.fixture(scope="class")
    def mi(self, small_task):
        return MultiInstanceBellwetherSearch(small_task, ["profit"])

    def test_bags_match_fact_rows(self, mi, small_task):
        region = small_task.space.region(2, "MW")
        bags = mi.bags_for_region(region)
        fact = small_task.db.fact
        mask = small_task.space.mask(fact, region)
        expected_counts: dict = {}
        for item in fact["item"][mask]:
            expected_counts[item] = expected_counts.get(item, 0) + 1
        assert {i: len(b) for i, b in bags.items()} == expected_counts

    def test_bag_values_are_instance_columns(self, mi, small_task):
        region = small_task.space.region(1, "WI")
        bags = mi.bags_for_region(region)
        fact = small_task.db.fact
        mask = small_task.space.mask(fact, region)
        item = next(iter(bags))
        expected = sorted(
            p for i, p in zip(fact["item"][mask], fact["profit"][mask]) if i == item
        )
        assert sorted(bags[item][:, 0]) == pytest.approx(expected)

    def test_embedding_shape(self, mi, small_task):
        region = small_task.space.region(4, "All")
        ids, x, y = mi.embed_region(region)
        assert x.shape == (len(ids), len(mi.embedded_feature_names))
        assert y.shape == (len(ids),)

    def test_run_returns_feasible_min(self, mi):
        best = mi.run(budget=10.0)
        assert best.cost <= 10.0
        assert np.isfinite(best.rmse)

    def test_fit_model_predicts(self, mi, small_task):
        region = small_task.space.region(4, "All")
        model = mi.fit_model(region)
        __, x, __ = mi.embed_region(region)
        assert model.predict(x).shape == (x.shape[0],)

    def test_requires_numeric_columns(self, small_task):
        with pytest.raises(TaskError):
            MultiInstanceBellwetherSearch(small_task, ["state"])
        with pytest.raises(TaskError):
            MultiInstanceBellwetherSearch(small_task, [])


class TestAutoFeatures:
    def test_enumeration_covers_all_forms(self, small_task):
        candidates = enumerate_candidate_features(
            small_task.db,
            exclude_columns=[d.attribute for d in small_task.space.dimensions],
            id_column="item",
        )
        kinds = {type(f).__name__ for f in candidates}
        assert kinds == {"FactAggregate", "JoinAggregate", "DistinctJoinAggregate"}
        aliases = [f.alias for f in candidates]
        assert len(set(aliases)) == len(aliases)
        # dimension attrs and keys never become measures
        assert not any("week" in a or "state" in a for a in aliases)

    def test_selection_improves_probe_error(self, small_task):
        result = select_features(
            small_task, max_features=2, n_probe_regions=4, seed=0
        )
        assert 1 <= len(result.selected) <= 2
        assert result.probe_errors == tuple(sorted(result.probe_errors, reverse=True))
        assert result.task.regional_features == result.selected

    def test_selected_task_is_runnable(self, small_task):
        result = select_features(
            small_task, max_features=1, n_probe_regions=3, seed=1
        )
        gen = TrainingDataGenerator(result.task)
        store = gen.generate(regions=gen.all_regions()[:3])
        assert len(store.regions()) == 3

    def test_no_candidates_rejected(self, small_task):
        with pytest.raises(TaskError):
            select_features(small_task, candidates=[], max_features=1)


class TestWindowedTraining:
    def test_cube_equals_naive_with_sliding_windows(self, small_task):
        windowed = WindowedIntervalDimension.sliding("week", N_WEEKS, width=2)
        space = RegionSpace([windowed, small_task.space.dimensions[1]])
        task = BellwetherTask(
            small_task.db, space, small_task.item_table, "item",
            target=small_task.target,
            regional_features=small_task.regional_features,
            item_feature_attrs=small_task.item_feature_attrs,
            error_estimator=TrainingSetEstimator(),
        )
        gen = TrainingDataGenerator(task)
        cube = gen.generate(method="cube")
        naive = gen.generate(method="naive")
        for region in gen.all_regions():
            b1, b2 = cube._fetch(region), naive._fetch(region)
            assert list(b1.item_ids) == list(b2.item_ids), region
            assert np.allclose(b1.x, b2.x, equal_nan=True), region

    def test_window_regions_enumerated(self, small_task):
        windowed = WindowedIntervalDimension("week", N_WEEKS, [(2, 3)])
        space = RegionSpace([windowed, small_task.space.dimensions[1]])
        task = BellwetherTask(
            small_task.db, space, small_task.item_table, "item",
            target=small_task.target,
            regional_features=small_task.regional_features,
            error_estimator=TrainingSetEstimator(),
        )
        gen = TrainingDataGenerator(task)
        regions = gen.all_regions()
        assert len(regions) == 7  # 1 window x 7 location nodes
        assert all(str(r.values[0]) == "2-3" for r in regions)

    def test_windowed_coverage_matches_blocks(self, small_task):
        windowed = WindowedIntervalDimension.sliding("week", N_WEEKS, width=3)
        space = RegionSpace([windowed, small_task.space.dimensions[1]])
        task = BellwetherTask(
            small_task.db, space, small_task.item_table, "item",
            target=small_task.target,
            regional_features=small_task.regional_features,
            error_estimator=TrainingSetEstimator(),
        )
        gen = TrainingDataGenerator(task)
        cov = gen.coverage()
        store = gen.generate()
        for region, value in cov.items():
            assert value == pytest.approx(
                store._fetch(region).n_examples / task.n_items
            )


class TestPruning:
    def test_pruned_tree_not_larger(self, small_task, small_store):
        from repro.core import BellwetherTreeBuilder

        store, __, __ = small_store
        builder = BellwetherTreeBuilder(
            small_task, store, split_attrs=("category", "rd"),
            min_items=6, max_depth=3, max_numeric_splits=4,
            min_relative_goodness=0.0,  # grow eagerly, prune after
        )
        grown = builder.build("rf")
        pruned = builder.build_pruned("rf", validation_fraction=0.3, seed=0)
        assert len(pruned.leaves()) <= max(len(grown.leaves()), 1)

    def test_pruned_leaves_are_finalized(self, small_task, small_store):
        from repro.core import BellwetherTreeBuilder

        store, __, __ = small_store
        builder = BellwetherTreeBuilder(
            small_task, store, split_attrs=("category", "rd"),
            min_items=6, max_depth=2, max_numeric_splits=3,
        )
        tree = builder.build_pruned("rf", validation_fraction=0.25, seed=1)
        for leaf in tree.leaves():
            assert leaf.region is not None
            assert leaf.model is not None and leaf.model.is_fitted

    def test_bad_validation_fraction(self, small_task, small_store):
        from repro.core import BellwetherTreeBuilder, TaskError

        store, __, __ = small_store
        builder = BellwetherTreeBuilder(
            small_task, store, split_attrs=("category",), min_items=6
        )
        with pytest.raises(TaskError):
            builder.build_pruned(validation_fraction=1.5)

    def test_prune_on_noise_collapses(self, small_task, small_store):
        """With a pure-noise split feature, pruning should shrink the tree."""
        from repro.core import BellwetherTreeBuilder

        store, __, __ = small_store
        builder = BellwetherTreeBuilder(
            small_task, store, split_attrs=("rd",),  # rd is unrelated noise
            min_items=6, max_depth=3, max_numeric_splits=6,
            min_relative_goodness=0.0,
        )
        grown = builder.build("rf")
        if len(grown.leaves()) == 1:
            pytest.skip("nothing grew to prune")
        ids = np.asarray(small_task.item_ids)
        tree = builder.build("rf", item_ids=ids[:22])
        builder.prune(tree, ids[22:])
        assert len(tree.leaves()) <= len(grown.leaves())
