"""Tests for item-centric k-fold evaluation and the predictor protocol."""

import numpy as np
import pytest

from repro.core import (
    BasicPredictor,
    SearchError,
    basic_factory,
    compare_methods,
    cube_factory,
    kfold_item_rmse,
    tree_factory,
)
from repro.dimensions import HierarchicalDimension, ItemHierarchies


@pytest.fixture(scope="module")
def hierarchies() -> ItemHierarchies:
    cat = HierarchicalDimension.from_spec(
        "category", {"Either": ["a", "b"]},
        level_names=("Any", "Side", "Category"), root_name="Any",
    )
    return ItemHierarchies([cat])


class TestBasicPredictor:
    def test_predicts_all_items(self, small_task, small_store):
        store, __, __ = small_store
        predictor = BasicPredictor(small_task, store, budget=10.0)
        for item_id in small_task.item_ids:
            assert np.isfinite(predictor.predict(item_id))

    def test_region_is_feasible(self, small_task, small_store):
        store, costs, __ = small_store
        predictor = BasicPredictor(small_task, store, budget=10.0)
        assert costs[predictor.region] <= 10.0
        assert predictor.region_for("anything") == predictor.region

    def test_train_subset_excludes_test_rows(self, small_task, small_store):
        store, __, __ = small_store
        train = list(np.asarray(small_task.item_ids)[:20])
        predictor = BasicPredictor(small_task, store, budget=10.0, item_ids=train)
        assert predictor.model.stats.n <= 20

    def test_infeasible_budget_raises(self, small_task, small_store):
        store, __, __ = small_store
        with pytest.raises(SearchError):
            BasicPredictor(small_task, store, budget=-1.0)


class TestKfold:
    def test_kfold_rmse_positive(self, small_task, small_store):
        store, __, __ = small_store
        rmse = kfold_item_rmse(
            small_task, basic_factory(small_task, store, budget=10.0),
            n_folds=3, seed=0,
        )
        assert np.isfinite(rmse) and rmse > 0

    def test_deterministic(self, small_task, small_store):
        store, __, __ = small_store
        factory = basic_factory(small_task, store, budget=10.0)
        a = kfold_item_rmse(small_task, factory, n_folds=3, seed=1)
        b = kfold_item_rmse(small_task, factory, n_folds=3, seed=1)
        assert a == b

    def test_infeasible_everywhere_gives_nan(self, small_task, small_store):
        store, __, __ = small_store
        rmse = kfold_item_rmse(
            small_task, basic_factory(small_task, store, budget=-1.0),
            n_folds=3,
        )
        assert np.isnan(rmse)


class TestCompareMethods:
    def test_all_methods_reported(self, small_task, small_store, hierarchies):
        store, __, __ = small_store
        out = compare_methods(
            small_task,
            store,
            hierarchies=hierarchies,
            split_attrs=("category", "rd"),
            n_folds=3,
            seed=0,
            tree_kwargs=dict(min_items=10, max_depth=1, max_numeric_splits=2),
            cube_kwargs=dict(min_subset_size=5),
        )
        assert set(out) == {"basic", "tree", "cube"}
        for v in out.values():
            assert np.isfinite(v)

    def test_without_hierarchies_skips_cube(self, small_task, small_store):
        store, __, __ = small_store
        out = compare_methods(
            small_task,
            store,
            split_attrs=("category",),
            n_folds=2,
            tree_kwargs=dict(min_items=10, max_depth=1),
        )
        assert set(out) == {"basic", "tree"}

    def test_tree_and_cube_factories_fit_on_train_fold(
        self, small_task, small_store, hierarchies
    ):
        store, __, __ = small_store
        train = np.asarray(small_task.item_ids)[:20]
        tree = tree_factory(
            small_task, store, ("category", "rd"),
            min_items=10, max_depth=1, max_numeric_splits=2,
        )(train)
        assert sorted(i for l in tree.leaves() for i in l.item_ids) == sorted(train)
        cube_pred = cube_factory(
            small_task, store, hierarchies, min_subset_size=5
        )(train)
        item = small_task.item_ids[-1]  # a held-out item still predicts
        assert np.isfinite(cube_pred.predict(item))
