"""Tests for bellwether tree construction, routing and prediction."""

import numpy as np
import pytest

from repro.core import BellwetherTreeBuilder, SearchError, TaskError
from repro.core.tree import SplitCandidate


@pytest.fixture(scope="module")
def builder(small_task, small_store):
    store, __, __ = small_store
    return BellwetherTreeBuilder(
        small_task,
        store,
        split_attrs=("category", "rd"),
        min_items=8,
        max_depth=2,
        max_numeric_splits=4,
    )


@pytest.fixture(scope="module")
def tree(builder):
    return builder.build(method="rf")


class TestSplitCandidate:
    def test_categorical_routing(self):
        c = SplitCandidate("cat", "cat", categories=("a", "b", "c"))
        assert c.n_children() == 3
        assert c.route("b") == 1
        with pytest.raises(SearchError):
            c.route("zzz")

    def test_numeric_routing(self):
        c = SplitCandidate("x", "num", threshold=1.5)
        assert c.route(1.0) == 0
        assert c.route(1.5) == 1

    def test_partition_vectorized(self):
        c = SplitCandidate("x", "num", threshold=0.0)
        out = c.partition(np.array([-1.0, 0.0, 2.0]))
        assert list(out) == [0, 1, 1]

    def test_str(self):
        assert str(SplitCandidate("cat", "cat", categories=("a",))) == "<cat>"
        assert ">=" in str(SplitCandidate("x", "num", threshold=2.0))


class TestCandidateEnumeration:
    def test_candidates_cover_both_kinds(self, builder, small_task):
        cands = builder._candidate_splits(np.asarray(small_task.item_ids))
        kinds = {c.kind for c in cands}
        assert kinds == {"cat", "num"}

    def test_numeric_split_cap(self, builder, small_task):
        cands = builder._candidate_splits(np.asarray(small_task.item_ids))
        numeric = [c for c in cands if c.kind == "num"]
        assert 0 < len(numeric) <= builder.max_numeric_splits

    def test_constant_attribute_produces_no_split(self, builder, small_task):
        ids = np.asarray(small_task.item_ids)
        cats = builder._attr_values["category"]
        same_cat = ids[[k for k, v in enumerate(cats) if v == cats[0]]]
        cands = builder._candidate_splits(same_cat[:5])
        assert all(c.attr != "category" for c in cands)


class TestConstruction:
    def test_every_leaf_has_region_and_model(self, tree):
        for leaf in tree.leaves():
            assert leaf.region is not None
            assert leaf.model is not None and leaf.model.is_fitted
            assert leaf.error is not None

    def test_leaves_partition_items(self, tree, small_task):
        all_ids = sorted(
            i for leaf in tree.leaves() for i in leaf.item_ids
        )
        assert all_ids == sorted(small_task.item_ids)

    def test_max_depth_respected(self, tree, builder):
        assert tree.n_levels <= builder.max_depth + 1

    def test_min_items_respected(self, tree, builder):
        for leaf in tree.leaves():
            parent_splittable = leaf.depth == 0 or True
            # every *split* node had >= min_items
            pass
        def check(node):
            if not node.is_leaf:
                assert node.n_items >= builder.min_items
                for c in node.children:
                    check(c)
        check(tree.root)

    def test_describe_mentions_leaves(self, tree):
        text = tree.describe()
        assert "leaf:" in text

    def test_unknown_method_rejected(self, builder):
        with pytest.raises(TaskError):
            builder.build(method="bogus")

    def test_empty_split_attrs_fall_back_to_task(self, small_task, small_store):
        store, __, __ = small_store
        builder = BellwetherTreeBuilder(small_task, store, split_attrs=())
        assert builder.split_attrs == small_task.item_feature_attrs

    def test_subset_build(self, builder, small_task):
        subset = list(np.asarray(small_task.item_ids)[:20])
        tree = builder.build(method="rf", item_ids=subset)
        assert sorted(i for l in tree.leaves() for i in l.item_ids) == sorted(subset)

    def test_unknown_subset_ids_rejected(self, builder):
        with pytest.raises(TaskError):
            builder.build(method="rf", item_ids=[999])


class TestRoutingAndPrediction:
    def test_route_every_item(self, tree, small_task):
        for item_id in small_task.item_ids:
            leaf = tree.route_item(item_id)
            assert item_id in leaf.item_ids

    def test_region_for(self, tree, small_task):
        item = small_task.item_ids[0]
        assert tree.region_for(item) == tree.route_item(item).region

    def test_predict_finite(self, tree, small_task):
        for item_id in list(small_task.item_ids)[:10]:
            assert np.isfinite(tree.predict(item_id))

    def test_missing_attr_rejected(self, tree):
        if tree.root.is_leaf:
            pytest.skip("tree degenerated to a single leaf")
        with pytest.raises(SearchError):
            tree.route({})


class TestScanAccounting:
    def test_rf_scans_once_per_level(self, small_task, small_store):
        store, __, __ = small_store
        store.stats.reset()
        builder = BellwetherTreeBuilder(
            small_task,
            store,
            split_attrs=("category", "rd"),
            min_items=8,
            max_depth=2,
            max_numeric_splits=4,
        )
        tree = builder.build(method="rf")
        # Lemma 1: one full scan per level of the (constructed) tree; the
        # last level of leaves still runs one scan to pick their regions.
        assert store.stats.full_scans == tree.n_levels or (
            store.stats.full_scans == tree.n_levels + 1
        )

    def test_naive_reads_many_blocks(self, small_task, small_store):
        store, __, __ = small_store
        store.stats.reset()
        builder = BellwetherTreeBuilder(
            small_task,
            store,
            split_attrs=("category",),
            min_items=8,
            max_depth=1,
            max_numeric_splits=2,
        )
        builder.build(method="naive")
        n_regions = len(store.regions())
        # naive re-reads every region once per bellwether subproblem
        assert store.stats.region_reads > n_regions
