"""Property-based tests over the bellwether core's structural invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BasicBellwetherSearch
from repro.core.tree import SplitCandidate
from repro.dimensions import (
    HierarchicalDimension,
    Interval,
    IntervalDimension,
    RegionSpace,
)
from repro.table import Table


@st.composite
def fact_tables(draw):
    n = draw(st.integers(1, 80))
    seed = draw(st.integers(0, 5000))
    rng = np.random.default_rng(seed)
    return Table(
        {
            "item": rng.integers(1, 8, n),
            "week": rng.integers(1, 5, n),
            "state": rng.choice(["WI", "IL", "NY", "MD"], n).astype(object),
            "profit": rng.normal(size=n),
        }
    )


def _space() -> RegionSpace:
    time = IntervalDimension("week", 4)
    loc = HierarchicalDimension.from_spec(
        "state", {"MW": ["WI", "IL"], "NE": ["NY", "MD"]},
        level_names=("All", "Division", "State"),
    )
    return RegionSpace([time, loc])


@given(fact_tables())
@settings(max_examples=40, deadline=None)
def test_region_masks_nest_along_prefixes(fact):
    """[1-t, node] rows ⊆ [1-(t+1), node] rows — windows only grow."""
    space = _space()
    for node in ("WI", "MW", "All"):
        prev = None
        for t in range(1, 5):
            mask = space.mask(fact, space.region(t, node))
            if prev is not None:
                assert (prev <= mask).all()
            prev = mask


@given(fact_tables())
@settings(max_examples=40, deadline=None)
def test_region_masks_nest_up_hierarchy(fact):
    """[t, state] rows ⊆ [t, division] ⊆ [t, All]."""
    space = _space()
    for t in (1, 4):
        wi = space.mask(fact, space.region(t, "WI"))
        mw = space.mask(fact, space.region(t, "MW"))
        top = space.mask(fact, space.region(t, "All"))
        assert (wi <= mw).all()
        assert (mw <= top).all()


@given(fact_tables())
@settings(max_examples=40, deadline=None)
def test_sibling_state_masks_partition_division(fact):
    space = _space()
    wi = space.mask(fact, space.region(4, "WI"))
    il = space.mask(fact, space.region(4, "IL"))
    mw = space.mask(fact, space.region(4, "MW"))
    assert not (wi & il).any()
    assert ((wi | il) == mw).all()


@st.composite
def split_inputs(draw):
    kind = draw(st.sampled_from(["cat", "num"]))
    n = draw(st.integers(1, 40))
    if kind == "cat":
        cats = tuple(sorted(draw(
            st.sets(st.sampled_from(list("abcdef")), min_size=2, max_size=4)
        )))
        values = np.array(
            draw(st.lists(st.sampled_from(cats), min_size=n, max_size=n)),
            dtype=object,
        )
        return SplitCandidate("f", "cat", categories=cats), values
    threshold = draw(st.floats(-2, 2))
    values = np.array(
        draw(st.lists(st.floats(-5, 5, allow_nan=False), min_size=n, max_size=n))
    )
    return SplitCandidate("f", "num", threshold=threshold), values


@given(split_inputs())
@settings(max_examples=60, deadline=None)
def test_split_partition_matches_scalar_route(case):
    """Vectorized partition() agrees with per-value route()."""
    split, values = case
    children = split.partition(values)
    for value, child in zip(values, children):
        assert split.route(value) == child
    assert set(children) <= set(range(split.n_children()))


@given(st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_interval_containment_consistent(seed):
    rng = np.random.default_rng(seed)
    start = int(rng.integers(1, 10))
    end = int(rng.integers(start, 12))
    iv = Interval(start, end)
    for t in range(1, 14):
        assert iv.contains_point(t) == (start <= t <= end)
    assert iv.length == end - start + 1
