"""End-to-end integration: CSV files -> star schema -> bellwether -> predict.

Exercises the full user journey a downstream adopter would take: persist a
database to disk, reload it, define a task, materialize training data, find
the bellwether, fit its model, and predict a held-out item — with the disk
store in the loop.
"""

import numpy as np
import pytest

from repro.core import (
    AggregateTargetQuery,
    BasicBellwetherSearch,
    BellwetherTask,
    Criterion,
    FactAggregate,
    JoinAggregate,
    TrainingDataGenerator,
)
from repro.datasets import make_mailorder
from repro.dimensions import IntervalDimension, ProductCostModel, RegionSpace
from repro.datasets.locations import STATE_WEIGHTS, us_location_dimension
from repro.ml import TrainingSetEstimator
from repro.storage import DiskStore
from repro.table import load_database, save_database


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def roundtripped(self, tmp_path_factory):
        original = make_mailorder(n_items=50, seed=0)
        directory = tmp_path_factory.mktemp("db")
        save_database(original.db, directory)
        db = load_database(directory)
        return original, db

    def test_database_roundtrip(self, roundtripped):
        original, db = roundtripped
        assert db.fact.n_rows == original.db.fact.n_rows
        assert set(db.reference_names) == set(original.db.reference_names)
        assert np.allclose(db.fact["profit"], original.db.fact["profit"])
        db.check_integrity()

    def test_pipeline_from_files_to_prediction(self, roundtripped, tmp_path):
        original, db = roundtripped
        time = IntervalDimension("month", 10, unit="month")
        loc = us_location_dimension("state")
        space = RegionSpace([time, loc])
        task = BellwetherTask(
            db,
            space,
            original.item_table,
            "item",
            target=AggregateTargetQuery("sum", "profit", "item"),
            regional_features=[
                FactAggregate("sum", "profit", "reg_profit"),
                JoinAggregate("max", "pages", "reg_max_pages", reference="catalogs"),
            ],
            item_feature_attrs=("category", "rdexpense"),
            cost_model=ProductCostModel(space, STATE_WEIGHTS),
            criterion=Criterion(min_coverage=0.25),
            error_estimator=TrainingSetEstimator(),
        )
        gen = TrainingDataGenerator(task)
        memory_store = gen.generate()
        disk_store = DiskStore.from_memory(tmp_path / "blocks", memory_store)
        search = BasicBellwetherSearch(task, disk_store)
        result = search.run(budget=60.0)
        assert result.found
        # the planted MD window survives the whole file round trip
        assert str(result.bellwether.region.values[1]) == "MD"
        model = search.fit_model(result.bellwether.region)
        block = disk_store.read(result.bellwether.region)
        predictions = model.predict(block.x)
        # a planted bellwether predicts well in-region
        rel_err = np.abs(predictions - block.y) / np.abs(block.y)
        assert np.median(rel_err) < 0.25

    def test_manifestless_directory_rejected(self, tmp_path):
        from repro.table import SchemaError

        with pytest.raises(SchemaError):
            load_database(tmp_path)

    def test_save_requires_database(self, tmp_path):
        from repro.table import SchemaError, Table

        with pytest.raises(SchemaError):
            save_database(Table({"a": [1]}), tmp_path)
