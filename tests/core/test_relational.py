"""Tests for the relational bellwether extension."""

import numpy as np
import pytest

from repro.core import (
    AggregatingRelationalLearner,
    FactAggregate,
    JoinAggregate,
    RelationalBellwetherSearch,
    SearchError,
    TaskError,
)


@pytest.fixture(scope="module")
def learner():
    return AggregatingRelationalLearner(
        [
            FactAggregate("sum", "profit", "p"),
            FactAggregate("count", "profit", "n"),
        ],
        id_column="item",
    )


@pytest.fixture(scope="module")
def search(small_task, learner):
    return RelationalBellwetherSearch(small_task, learner)


class TestSubdatabase:
    def test_fact_restricted_to_region(self, search, small_task):
        region = small_task.space.region(2, "MW")
        subdb = search.subdatabase(region)
        mask = small_task.space.mask(small_task.db.fact, region)
        assert subdb.fact.n_rows == int(mask.sum())
        assert set(subdb.fact["state"]) <= {"WI", "IL"}
        assert subdb.fact["week"].max() <= 2

    def test_references_restricted_to_touched_keys(self, search, small_task):
        region = small_task.space.region(1, "WI")
        subdb = search.subdatabase(region)
        used = set(subdb.fact["ad"])
        assert set(subdb.reference("ads").table["ad"]) == used

    def test_integrity_preserved(self, search, small_task):
        subdb = search.subdatabase(small_task.space.region(3, "NE"))
        subdb.check_integrity()  # no dangling FKs

    def test_cached(self, search, small_task):
        region = small_task.space.region(1, "IL")
        assert search.subdatabase(region) is search.subdatabase(region)

    def test_items_in(self, search, small_task):
        region = small_task.space.region(4, "All")
        items = search.items_in(region)
        expected = set(small_task.db.fact["item"])
        assert set(items) == expected


class TestLearner:
    def test_reduction_matches_direct_aggregation(self, search, small_task, learner):
        region = small_task.space.region(4, "All")
        subdb = search.subdatabase(region)
        items = search.items_in(region)
        x = learner._featurize(subdb, items)
        fact = subdb.fact
        for row, item in zip(x, items):
            mask = fact["item"] == item
            assert row[0] == pytest.approx(fact["profit"][mask].sum())
            assert row[1] == pytest.approx(mask.sum())

    def test_distinct_feature_supported(self, small_task):
        from repro.core import DistinctJoinAggregate

        learner = AggregatingRelationalLearner(
            [DistinctJoinAggregate("sum", "adsize", "a", reference="ads")],
            id_column="item",
        )
        search = RelationalBellwetherSearch(small_task, learner)
        region = small_task.space.region(4, "All")
        subdb = search.subdatabase(region)
        items = search.items_in(region)[:5]
        x = learner._featurize(subdb, items)
        sizes = dict(zip(subdb.reference("ads").table["ad"],
                         subdb.reference("ads").table["adsize"]))
        fact = subdb.fact
        for row, item in zip(x, items):
            ads = set(fact["ad"][fact["item"] == item])
            assert row[0] == pytest.approx(sum(sizes[a] for a in ads))

    def test_unfitted_predict_rejected(self, learner, search, small_task):
        fresh = AggregatingRelationalLearner(
            [FactAggregate("sum", "profit", "p")], id_column="item"
        )
        with pytest.raises(SearchError):
            fresh.predict(search.subdatabase(small_task.space.region(1, "WI")),
                          np.array([1]))

    def test_empty_features_rejected(self):
        with pytest.raises(TaskError):
            AggregatingRelationalLearner([], id_column="item")


class TestSearch:
    def test_run_respects_budget(self, search, small_task):
        candidates = [
            r for r in small_task.space.all_regions()
            if small_task.cost(r) <= 8.0
        ][:20]
        best = search.run(budget=8.0, candidate_regions=candidates, n_folds=3)
        assert best.cost <= 8.0
        assert np.isfinite(best.rmse)

    def test_impossible_budget(self, search):
        with pytest.raises(SearchError):
            search.run(budget=-1.0, candidate_regions=[], n_folds=3)
