"""Shared fixtures: a small hand-built star schema and its task/store."""

import numpy as np
import pytest

from repro.core import (
    AggregateTargetQuery,
    BellwetherTask,
    Criterion,
    DistinctJoinAggregate,
    FactAggregate,
    JoinAggregate,
    TrainingDataGenerator,
    build_store,
)
from repro.dimensions import (
    HierarchicalDimension,
    IntervalDimension,
    ProductCostModel,
    RegionSpace,
)
from repro.ml import TrainingSetEstimator
from repro.table import Database, Reference, Table

N_ITEMS = 30
N_WEEKS = 4
STATES = ("WI", "IL", "NY", "MD")
WEIGHTS = {"WI": 1.0, "IL": 2.0, "NY": 3.0, "MD": 0.5}


@pytest.fixture(scope="session")
def small_db() -> Database:
    rng = np.random.default_rng(11)
    n = 1200
    fact = Table(
        {
            "item": rng.integers(1, N_ITEMS + 1, n),
            "week": rng.integers(1, N_WEEKS + 1, n),
            "state": rng.choice(STATES, n).astype(object),
            "ad": rng.integers(0, 5, n),
            "profit": rng.lognormal(2.0, 0.6, n),
        }
    )
    ads = Table({"ad": np.arange(5), "adsize": [10.0, 25.0, 40.0, 55.0, 70.0]})
    return Database(fact, [Reference("ads", ads, "ad")])


@pytest.fixture(scope="session")
def small_space() -> RegionSpace:
    time = IntervalDimension("week", N_WEEKS, unit="week")
    loc = HierarchicalDimension.from_spec(
        "state",
        {"MW": ["WI", "IL"], "NE": ["NY", "MD"]},
        level_names=("All", "Division", "State"),
    )
    return RegionSpace([time, loc])


@pytest.fixture(scope="session")
def small_items() -> Table:
    rng = np.random.default_rng(5)
    return Table(
        {
            "item": np.arange(1, N_ITEMS + 1),
            "category": rng.choice(["a", "b"], N_ITEMS).astype(object),
            "rd": rng.normal(size=N_ITEMS),
        }
    )


@pytest.fixture(scope="session")
def small_task(small_db, small_space, small_items) -> BellwetherTask:
    return BellwetherTask(
        small_db,
        small_space,
        small_items,
        "item",
        target=AggregateTargetQuery("sum", "profit", "item"),
        regional_features=[
            FactAggregate("sum", "profit", "reg_profit"),
            FactAggregate("count", "profit", "reg_orders"),
            JoinAggregate("max", "adsize", "reg_max_ad", reference="ads"),
            DistinctJoinAggregate("sum", "adsize", "reg_ad_total", reference="ads"),
        ],
        item_feature_attrs=("category", "rd"),
        cost_model=ProductCostModel(small_space, WEIGHTS),
        criterion=Criterion(min_coverage=0.2),
        error_estimator=TrainingSetEstimator(),
    )


@pytest.fixture(scope="session")
def small_store(small_task):
    store, costs, coverage = build_store(small_task)
    return store, costs, coverage


@pytest.fixture(scope="session")
def small_generator(small_task) -> TrainingDataGenerator:
    return TrainingDataGenerator(small_task)
