"""Tests for bellwether cube construction, crosstab views and prediction."""

import numpy as np
import pytest

from repro.core import BellwetherCubeBuilder, CubePredictor, SearchError, TaskError
from repro.dimensions import CubeSubset, HierarchicalDimension, ItemHierarchies


@pytest.fixture(scope="module")
def hierarchies() -> ItemHierarchies:
    cat = HierarchicalDimension.from_spec(
        "category", {"Either": ["a", "b"]},
        level_names=("Any", "Side", "Category"), root_name="Any",
    )
    return ItemHierarchies([cat])


@pytest.fixture(scope="module")
def cube_builder(small_task, small_store, hierarchies):
    store, __, __ = small_store
    return BellwetherCubeBuilder(
        small_task, store, hierarchies, min_subset_size=5
    )


@pytest.fixture(scope="module")
def cube(cube_builder):
    return cube_builder.build(method="optimized")


class TestSignificance:
    def test_significant_subsets_have_enough_items(self, cube_builder, small_task, hierarchies):
        for subset in cube_builder.significant_subsets:
            n = int(hierarchies.member_mask(small_task.item_table, subset).sum())
            assert n >= cube_builder.min_subset_size

    def test_top_subset_always_significant(self, cube_builder, small_task):
        top = [s for s in cube_builder.significant_subsets if s.level == (0,)]
        assert len(top) == 1
        assert top[0].nodes == ("Any",)

    def test_threshold_excludes_small_subsets(self, small_task, small_store, hierarchies):
        store, __, __ = small_store
        big_k = BellwetherCubeBuilder(
            small_task, store, hierarchies, min_subset_size=10_000
        )
        assert big_k.significant_subsets == []


class TestBuild:
    def test_every_entry_resolved(self, cube):
        assert len(cube) > 0
        for subset in cube.subsets:
            entry = cube.entry(subset)
            assert entry.found
            assert np.isfinite(entry.error.rmse)

    def test_contains_and_len(self, cube):
        assert cube.subsets[0] in cube
        assert len(cube) == len(cube.subsets)

    def test_unknown_subset_rejected(self, cube):
        with pytest.raises(SearchError):
            cube.entry(CubeSubset(("Mars",), (0,)))

    def test_unknown_method_rejected(self, cube_builder):
        with pytest.raises(TaskError):
            cube_builder.build(method="bogus")

    def test_missing_hierarchy_attr_rejected(self, small_task, small_store):
        store, __, __ = small_store
        bad = ItemHierarchies(
            [
                HierarchicalDimension.from_spec(
                    "ghost", {"X": ["p"]}, level_names=("Any", "S", "L"),
                    root_name="Any",
                )
            ]
        )
        with pytest.raises(Exception):
            BellwetherCubeBuilder(small_task, store, bad)


class TestViews:
    def test_crosstab_levels(self, cube):
        finest = cube.crosstab((2,))
        coarsest = cube.crosstab((0,))
        assert len(coarsest) == 1
        assert all(e.subset.level == (2,) for e in finest)

    def test_drilldown_returns_finer_nested_entries(self, cube):
        top = cube.entry(CubeSubset(("Any",), (0,)))
        children = cube.drilldown(top.subset)
        for e in children:
            assert sum(e.subset.level) == 1


class TestPrediction:
    def test_choose_subset_prefers_low_upper_bound(self, cube):
        entry = cube.choose_subset({"category": "a"})
        candidates = [
            cube.entry(s)
            for s in cube.hierarchies.subsets_containing({"category": "a"})
            if s in cube
        ]
        best_upper = min(
            e.error.upper(cube.confidence) for e in candidates if e.found
        )
        assert entry.error.upper(cube.confidence) == pytest.approx(best_upper)

    def test_predictor_outputs_finite(self, cube, small_task, small_store):
        store, __, __ = small_store
        predictor = CubePredictor(cube, small_task, store)
        for item_id in list(small_task.item_ids)[:8]:
            assert np.isfinite(predictor.predict(item_id))

    def test_region_for(self, cube, small_task, small_store):
        store, __, __ = small_store
        predictor = CubePredictor(cube, small_task, store)
        item = small_task.item_ids[0]
        assert predictor.region_for(item) in set(store.regions())

    def test_no_candidates_raises(self, cube):
        with pytest.raises(Exception):
            cube.choose_subset({"category": "not-a-leaf"})


class TestSubsetRestriction:
    def test_item_ids_subset_changes_significance(
        self, small_task, small_store, hierarchies
    ):
        store, __, __ = small_store
        subset_ids = list(np.asarray(small_task.item_ids)[:12])
        builder = BellwetherCubeBuilder(
            small_task, store, hierarchies, min_subset_size=5,
            item_ids=subset_ids,
        )
        for __, __, keep in builder._levels:
            for __, ___, n_items in keep:
                assert n_items <= 12

    def test_unknown_item_ids_rejected(self, small_task, small_store, hierarchies):
        store, __, __ = small_store
        with pytest.raises(TaskError):
            BellwetherCubeBuilder(
                small_task, store, hierarchies, item_ids=[424242]
            )
