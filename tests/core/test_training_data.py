"""Tests for training-set generation: the Section 4.2 rewrite vs naive."""

import numpy as np
import pytest

from repro.core import Criterion, TaskError, TrainingDataGenerator, build_store


class TestEquivalence:
    def test_cube_equals_naive_everywhere(self, small_generator):
        """The CUBE-style rewrite reproduces the per-region queries exactly."""
        cube_store = small_generator.generate(method="cube")
        naive_store = small_generator.generate(method="naive")
        assert set(cube_store.regions()) == set(naive_store.regions())
        for region in cube_store.regions():
            b1 = cube_store._fetch(region)
            b2 = naive_store._fetch(region)
            assert list(b1.item_ids) == list(b2.item_ids), region
            assert np.allclose(b1.x, b2.x, equal_nan=True), region
            assert np.allclose(b1.y, b2.y), region

    def test_unknown_method_rejected(self, small_generator):
        with pytest.raises(TaskError):
            small_generator.generate(method="magic")


class TestSemantics:
    def test_region_count(self, small_generator, small_task):
        assert len(small_generator.all_regions()) == small_task.space.n_regions

    def test_manual_sum_feature(self, small_generator, small_task):
        """reg_profit == hand-computed Σ profit per item in the region."""
        store = small_generator.generate(method="cube")
        fact = small_task.db.fact
        region = small_task.space.region(2, "MW")
        mask = small_task.space.mask(fact, region)
        expected: dict[int, float] = {}
        for item, profit in zip(fact["item"][mask], fact["profit"][mask]):
            expected[item] = expected.get(item, 0.0) + profit
        block = store._fetch(region)
        col = list(store.feature_names).index("reg_profit")
        assert set(block.item_ids) == set(expected)
        for item_id, row in zip(block.item_ids, block.x):
            assert row[col] == pytest.approx(expected[item_id])

    def test_manual_distinct_feature(self, small_generator, small_task):
        """reg_ad_total counts each ad once per item (form 3 semantics)."""
        store = small_generator.generate(method="cube")
        fact = small_task.db.fact
        region = small_task.space.region(3, "NE")
        mask = small_task.space.mask(fact, region)
        ads_size = dict(
            zip(
                small_task.db.reference("ads").table["ad"],
                small_task.db.reference("ads").table["adsize"],
            )
        )
        seen: dict[int, set] = {}
        for item, ad in zip(fact["item"][mask], fact["ad"][mask]):
            seen.setdefault(item, set()).add(ad)
        block = store._fetch(region)
        col = list(store.feature_names).index("reg_ad_total")
        for item_id, row in zip(block.item_ids, block.x):
            assert row[col] == pytest.approx(
                sum(ads_size[a] for a in seen[item_id])
            )

    def test_presence_matches_fact_rows(self, small_generator, small_task):
        store = small_generator.generate(method="cube")
        fact = small_task.db.fact
        for region in [
            small_task.space.region(1, "WI"),
            small_task.space.region(4, "All"),
        ]:
            mask = small_task.space.mask(fact, region)
            expected = set(fact["item"][mask])
            assert set(store._fetch(region).item_ids) == expected

    def test_coverage_values(self, small_generator, small_task):
        cov = small_generator.coverage()
        store = small_generator.generate(method="cube")
        for region, value in cov.items():
            block = store._fetch(region)
            assert value == pytest.approx(block.n_examples / small_task.n_items)

    def test_coverage_monotone_in_time(self, small_generator, small_task):
        """Growing the prefix window can only add items."""
        cov = small_generator.coverage()
        for node in ("WI", "MW", "All"):
            values = [
                cov[small_task.space.region(t, node)] for t in range(1, 5)
            ]
            assert values == sorted(values)

    def test_targets_constant_across_regions(self, small_generator):
        """τ_i must not depend on the region (only features do)."""
        store = small_generator.generate(method="cube")
        y_of: dict[int, float] = {}
        for region in store.regions():
            block = store._fetch(region)
            for item_id, y in zip(block.item_ids, block.y):
                assert y_of.setdefault(item_id, y) == y

    def test_block_for_mask_union_of_cells(self, small_generator, small_task):
        """An arbitrary cell union aggregates like a region when it is one."""
        region = small_task.space.region(2, "WI")
        mask = small_generator._region_mask(region)
        block = small_generator.block_for_mask(mask)
        expected = small_generator.generate(regions=[region])._fetch(region)
        assert list(block.item_ids) == list(expected.item_ids)
        assert np.allclose(block.x, expected.x, equal_nan=True)

    def test_block_for_mask_bad_shape(self, small_generator):
        with pytest.raises(TaskError):
            small_generator.block_for_mask(np.ones(3, dtype=bool))


class TestBuildStore:
    def test_coverage_pruning(self, small_task):
        pruned_task = small_task.with_criterion(Criterion(min_coverage=0.9))
        store, costs, coverage = build_store(pruned_task)
        for region in store.regions():
            assert coverage[region] >= 0.9

    def test_budget_pruning_optional(self, small_task):
        tight = small_task.with_criterion(Criterion(budget=2.0, min_coverage=0.0))
        store_all, costs, __ = build_store(tight, enforce_budget=False)
        store_cut, __, __ = build_store(tight, enforce_budget=True)
        assert len(store_cut.regions()) < len(store_all.regions())
        for region in store_cut.regions():
            assert costs[region] <= 2.0

    def test_costs_cover_all_regions(self, small_task):
        __, costs, __ = build_store(small_task)
        assert len(costs) == small_task.space.n_regions
