"""Tests for task specification and criteria."""

import numpy as np
import pytest

from repro.core import (
    AggregateTargetQuery,
    BellwetherTask,
    Criterion,
    DirectTask,
    FactAggregate,
    TaskError,
)
from repro.table import Table


class TestCriterion:
    def test_unconstrained_admits_everything(self):
        c = Criterion()
        assert c.admits(1e12, 0.0)

    def test_budget(self):
        c = Criterion(budget=10.0)
        assert c.admits(10.0, 0.5)
        assert not c.admits(10.01, 0.5)

    def test_coverage(self):
        c = Criterion(min_coverage=0.5)
        assert c.admits(0.0, 0.5)
        assert not c.admits(0.0, 0.49)

    def test_with_budget_preserves_coverage(self):
        c = Criterion(budget=5.0, min_coverage=0.3).with_budget(50.0)
        assert c.budget == 50.0
        assert c.min_coverage == 0.3

    def test_bad_coverage_rejected(self):
        with pytest.raises(TaskError):
            Criterion(min_coverage=1.5)


class TestBellwetherTask:
    def test_feature_names_order(self, small_task):
        names = small_task.feature_names
        # item features first (one-hot 'b' level + rd), then regional aliases
        assert names[0] == "category=b"
        assert names[1] == "rd"
        assert names[2:] == ("reg_profit", "reg_orders", "reg_max_ad", "reg_ad_total")

    def test_target_values_aligned(self, small_task):
        y = small_task.target_values()
        assert y.shape == (small_task.n_items,)
        assert (y > 0).all()

    def test_requires_features(self, small_db, small_space, small_items):
        with pytest.raises(TaskError):
            BellwetherTask(
                small_db,
                small_space,
                small_items,
                "item",
                target=AggregateTargetQuery("sum", "profit", "item"),
                regional_features=[],
            )

    def test_duplicate_alias_rejected(self, small_db, small_space, small_items):
        with pytest.raises(TaskError):
            BellwetherTask(
                small_db,
                small_space,
                small_items,
                "item",
                target=AggregateTargetQuery("sum", "profit", "item"),
                regional_features=[
                    FactAggregate("sum", "profit", "f"),
                    FactAggregate("count", "profit", "f"),
                ],
            )

    def test_with_criterion_shares_everything_else(self, small_task):
        clone = small_task.with_criterion(Criterion(budget=1.0))
        assert clone.criterion.budget == 1.0
        assert clone.db is small_task.db
        assert small_task.criterion.budget is None


class TestDirectTask:
    def test_basic_usage(self):
        items = Table({"item": [1, 2, 3], "f": [0.0, 1.0, 2.0]})
        task = DirectTask(items, "item", targets=np.array([1.0, 2.0, 3.0]),
                          item_feature_attrs=("f",))
        assert task.n_items == 3
        assert list(task.target_values()) == [1.0, 2.0, 3.0]
        assert task.item_encoder.feature_names == ("f",)

    def test_target_shape_mismatch(self):
        items = Table({"item": [1, 2]})
        with pytest.raises(TaskError):
            DirectTask(items, "item", targets=np.zeros(3))
