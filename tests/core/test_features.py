"""Unit tests for target/feature queries and the item-feature encoder."""

import numpy as np
import pytest

from repro.core import (
    AggregateTargetQuery,
    DistinctJoinAggregate,
    FactAggregate,
    ItemFeatureEncoder,
    JoinAggregate,
    TableTargetQuery,
    TaskError,
)
from repro.table import Database, Reference, Table


@pytest.fixture()
def db() -> Database:
    fact = Table(
        {
            "item": [1, 1, 2, 2, 2],
            "ad": [10, 11, 10, 10, 12],
            "profit": [1.0, 2.0, 3.0, 4.0, 5.0],
        }
    )
    ads = Table({"ad": [10, 11, 12], "adsize": [100.0, 200.0, 300.0]})
    return Database(fact, [Reference("ads", ads, "ad")])


class TestTargets:
    def test_aggregate_target(self, db):
        tq = AggregateTargetQuery("sum", "profit", "item")
        values = tq.values(db, np.array([1, 2]))
        assert list(values) == [3.0, 12.0]

    def test_aggregate_target_alignment(self, db):
        tq = AggregateTargetQuery("sum", "profit", "item")
        assert list(tq.values(db, np.array([2, 1]))) == [12.0, 3.0]

    def test_missing_item_rejected(self, db):
        tq = AggregateTargetQuery("sum", "profit", "item")
        with pytest.raises(TaskError):
            tq.values(db, np.array([1, 99]))

    def test_table_target(self, db):
        table = Table({"item": [1, 2], "y": [10.0, 20.0]})
        tq = TableTargetQuery(table, "item", "y")
        assert list(tq.values(db, np.array([2, 1]))) == [20.0, 10.0]

    def test_table_target_missing(self, db):
        table = Table({"item": [1], "y": [10.0]})
        tq = TableTargetQuery(table, "item", "y")
        with pytest.raises(TaskError):
            tq.values(db, np.array([2]))

    def test_bad_func_rejected(self):
        with pytest.raises(TaskError):
            AggregateTargetQuery("median", "profit", "item")


class TestFeatureQueries:
    def test_fact_aggregate_values(self, db):
        f = FactAggregate("sum", "profit", "reg_profit")
        assert list(f.value_column(db)) == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_join_aggregate_values(self, db):
        f = JoinAggregate("max", "adsize", "m", reference="ads")
        assert list(f.value_column(db)) == [100.0, 200.0, 100.0, 100.0, 300.0]

    def test_distinct_join_key_column(self, db):
        f = DistinctJoinAggregate("sum", "adsize", "s", reference="ads")
        assert list(f.key_column(db)) == [10, 11, 10, 10, 12]

    def test_empty_alias_rejected(self):
        with pytest.raises(TaskError):
            FactAggregate("sum", "profit", "")

    def test_missing_reference_rejected(self):
        with pytest.raises(TaskError):
            JoinAggregate("max", "adsize", "m")

    def test_dangling_fk_detected(self):
        fact = Table({"item": [1], "ad": [99], "profit": [1.0]})
        ads = Table({"ad": [10], "adsize": [1.0]})
        db = Database(fact, [Reference("ads", ads, "ad")])
        f = JoinAggregate("max", "adsize", "m", reference="ads")
        with pytest.raises(TaskError):
            f.value_column(db)


class TestItemFeatureEncoder:
    @pytest.fixture()
    def items(self) -> Table:
        return Table(
            {
                "item": [1, 2, 3],
                "cat": ["x", "y", "z"],
                "rd": [1.0, 2.0, 3.0],
            }
        )

    def test_one_hot_drops_first_level(self, items):
        enc = ItemFeatureEncoder(items, "item", ["cat", "rd"])
        assert enc.feature_names == ("cat=y", "cat=z", "rd")

    def test_matrix_values(self, items):
        enc = ItemFeatureEncoder(items, "item", ["cat", "rd"])
        m = enc.matrix(np.array([3, 1]))
        assert m.tolist() == [[0.0, 1.0, 3.0], [0.0, 0.0, 1.0]]

    def test_no_attributes(self, items):
        enc = ItemFeatureEncoder(items, "item", [])
        assert enc.n_features == 0
        assert enc.matrix(np.array([1, 2])).shape == (2, 0)

    def test_unknown_item_rejected(self, items):
        enc = ItemFeatureEncoder(items, "item", ["rd"])
        with pytest.raises(TaskError):
            enc.matrix(np.array([9]))

    def test_duplicate_ids_rejected(self):
        items = Table({"item": [1, 1], "rd": [0.0, 1.0]})
        with pytest.raises(TaskError):
            ItemFeatureEncoder(items, "item", ["rd"])
