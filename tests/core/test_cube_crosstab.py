"""Tests for the cube's cross-tab text view (Section 6.2's UI)."""

import pytest

from repro.core import BellwetherCubeBuilder, SearchError
from repro.dimensions import HierarchicalDimension, ItemHierarchies


@pytest.fixture(scope="module")
def two_dim_cube(small_task, small_store):
    store, __, __ = small_store
    cat = HierarchicalDimension.from_spec(
        "category", {"Either": ["a", "b"]},
        level_names=("Any", "Side", "Category"), root_name="Any",
    )
    # a second trivial hierarchy over the same attribute is not allowed;
    # bin rd via a derived column is overkill here, so split on category
    # and a single-node hierarchy over a constant derived from category.
    import numpy as np
    from repro.table import Table

    items = small_task.item_table
    parity = np.array(
        ["even" if k % 2 == 0 else "odd" for k in range(items.n_rows)],
        dtype=object,
    )
    extended = items.with_column("parity", parity)
    task = small_task.with_criterion(small_task.criterion)
    task.item_table = extended
    par = HierarchicalDimension.from_spec(
        "parity", ["even", "odd"], level_names=("Any", "Parity"),
        root_name="AnyP",
    )
    hierarchies = ItemHierarchies([cat, par])
    builder = BellwetherCubeBuilder(task, store, hierarchies, min_subset_size=4)
    return builder.build("optimized")


class TestCrosstabText:
    def test_renders_grid(self, two_dim_cube):
        text = two_dim_cube.crosstab_text((2, 1))
        lines = text.splitlines()
        assert len(lines) >= 3
        assert "|" in lines[0]

    def test_error_mode(self, two_dim_cube):
        text = two_dim_cube.crosstab_text((2, 1), show="error")
        assert any(ch.isdigit() for ch in text)

    def test_bad_show_rejected(self, two_dim_cube):
        with pytest.raises(SearchError):
            two_dim_cube.crosstab_text((2, 1), show="everything")

    def test_same_hierarchy_rejected(self, two_dim_cube):
        with pytest.raises(SearchError):
            two_dim_cube.crosstab_text((2, 1), row_hierarchy=0, col_hierarchy=0)

    def test_empty_level_message(self, two_dim_cube):
        text = two_dim_cube.crosstab_text((9, 9))
        assert "no significant subsets" in text
