"""Execution-layer equivalences: batched and parallel paths change nothing.

The batched optimized cube must reproduce the per-pair serial build
bit-for-bit (``optimized_serial`` is kept as the reference), issuing at
most one batched solve per lattice level; the worker fan-out must produce
stores and search profiles identical to serial runs.
"""

import pytest

from repro.core import (
    BasicBellwetherSearch,
    BellwetherCubeBuilder,
    TrainingDataGenerator,
)
from repro.datasets import make_mailorder, make_scalability
from repro.exec import ParallelConfig
from repro.obs import get_registry
from repro.verify import (
    EXACT,
    assert_same_cube,
    assert_same_profile,
    assert_same_store,
)


class TestBatchedCube:
    def test_optimized_equals_serial_reference_exactly(self, small_task, small_store):
        from repro.dimensions import HierarchicalDimension, ItemHierarchies

        store, __, __ = small_store
        cat = HierarchicalDimension.from_spec(
            "category", {"Either": ["a", "b"]},
            level_names=("Any", "Side", "Category"), root_name="Any",
        )
        builder = BellwetherCubeBuilder(
            small_task, store, ItemHierarchies([cat]), min_subset_size=5
        )
        batched = builder.build(method="optimized")
        serial = builder.build(method="optimized_serial")
        assert_same_cube(serial, batched, EXACT)  # bitwise, not approx

    def test_one_batched_solve_per_level_fig11_medium(self):
        ds = make_scalability(
            n_items=1_500, n_regions=32, hierarchy_leaves=3, seed=0
        )
        builder = BellwetherCubeBuilder(
            ds.task, ds.store, ds.hierarchies, min_subset_size=50
        )
        solves = get_registry().counter("ml.linear.batched_solves")
        before = solves.value
        builder.build("optimized")
        assert solves.value - before <= builder.n_levels


@pytest.fixture(scope="module")
def mailorder():
    return make_mailorder(n_items=120, n_months=6, seed=0)


class TestParallelTrainingData:
    @pytest.mark.parametrize("method", ["cube", "naive"])
    def test_generation_identical_to_serial(self, mailorder, method):
        gen = TrainingDataGenerator(mailorder.task)
        serial = gen.generate(method=method)
        fanned = gen.generate(method=method, parallel=ParallelConfig(workers=3))
        assert list(serial.regions()) == list(fanned.regions())
        assert_same_store(serial, fanned, EXACT)

    def test_thread_backend_identical_too(self, mailorder):
        gen = TrainingDataGenerator(mailorder.task)
        serial = gen.generate(method="cube")
        threaded = gen.generate(
            method="cube",
            parallel=ParallelConfig(workers=2, backend="thread"),
        )
        assert_same_store(serial, threaded, EXACT)


class TestParallelSearch:
    def test_evaluate_all_identical_and_scan_counted_once(self, mailorder):
        from repro.core import build_store

        store, costs, __ = build_store(mailorder.task)
        serial = BasicBellwetherSearch(
            mailorder.task, store, costs=costs
        ).evaluate_all()
        store.stats.reset()
        fanned = BasicBellwetherSearch(
            mailorder.task, store, costs=costs
        ).evaluate_all(parallel=ParallelConfig(workers=3))
        assert store.stats.full_scans == 1  # scan stays in the parent
        assert_same_profile(serial, fanned, EXACT)
