"""Tests for the RF-hybrid construction (Section 5.2's noted refinement)."""

import numpy as np
import pytest

from repro.core import BellwetherTreeBuilder


def _signature(node):
    if node.is_leaf:
        return ("leaf", str(node.region), tuple(sorted(node.item_ids)))
    return ("split", str(node.split), tuple(_signature(c) for c in node.children))


@pytest.fixture(scope="module")
def builder(small_task, small_store):
    store, __, __ = small_store
    return BellwetherTreeBuilder(
        small_task,
        store,
        split_attrs=("category", "rd"),
        min_items=8,
        max_depth=3,
        max_numeric_splits=3,
    )


class TestHybridEquivalence:
    def test_hybrid_equals_rf(self, builder):
        rf = builder.build(method="rf")
        hybrid = builder.build(method="hybrid", memory_budget_rows=10_000)
        assert _signature(rf.root) == _signature(hybrid.root)

    def test_hybrid_with_zero_budget_equals_rf(self, builder):
        """No node fits in memory: hybrid degenerates to plain RF."""
        rf = builder.build(method="rf")
        hybrid = builder.build(method="hybrid", memory_budget_rows=0)
        assert _signature(rf.root) == _signature(hybrid.root)


class TestHybridScans:
    def test_large_budget_needs_one_scan(self, small_task, small_store):
        """If the root's data fits in memory, one scan builds the tree."""
        store, __, __ = small_store
        builder = BellwetherTreeBuilder(
            small_task, store, split_attrs=("category", "rd"),
            min_items=8, max_depth=3, max_numeric_splits=3,
        )
        store.stats.reset()
        builder.build(method="hybrid", memory_budget_rows=10**9)
        assert store.stats.full_scans == 1

    def test_hybrid_never_scans_more_than_rf(self, small_task, small_store):
        store, __, __ = small_store
        builder = BellwetherTreeBuilder(
            small_task, store, split_attrs=("category", "rd"),
            min_items=8, max_depth=3, max_numeric_splits=3,
        )
        store.stats.reset()
        builder.build(method="rf")
        rf_scans = store.stats.full_scans
        store.stats.reset()
        builder.build(method="hybrid", memory_budget_rows=10**6)
        assert store.stats.full_scans <= rf_scans
