"""Fallback behaviour when a new item has no data in the chosen region.

The paper's prediction protocol assumes the budget buys the item's data from
the bellwether region; in practice (and in sparse synthetic data) an item can
be absent there.  These tests pin down the documented fallbacks.
"""

import numpy as np
import pytest

from repro.core import (
    BasicPredictor,
    BellwetherCubeBuilder,
    BellwetherTreeBuilder,
    CubePredictor,
    DirectTask,
)
from repro.dimensions import HierarchicalDimension, ItemHierarchies, Region
from repro.ml import TrainingSetEstimator
from repro.storage import MemoryStore, RegionBlock
from repro.table import Table


@pytest.fixture()
def sparse_setup():
    """Two regions; item 99 only has data in the worse one."""
    rng = np.random.default_rng(0)
    n = 40
    ids = np.arange(1, n + 1)
    items = Table(
        {
            "item": ids,
            "group": np.array(["g1"] * 20 + ["g2"] * 20, dtype=object),
        }
    )
    y = rng.normal(100.0, 10.0, n)
    good, bad = Region(("good",)), Region(("bad",))
    # good region: perfect feature, but item 40 is missing from it
    x_good = y[:, None] + rng.normal(0, 0.1, (n, 1))
    present = np.arange(n) != (n - 1)
    blocks = {
        good: RegionBlock(ids[present], x_good[present], y[present]),
        bad: RegionBlock(ids, rng.normal(size=(n, 1)), y),
    }
    store = MemoryStore(blocks, ("f",))
    task = DirectTask(
        items, "item", targets=y, item_feature_attrs=(),
        error_estimator=TrainingSetEstimator(),
    )
    return task, store, ids, y


class TestBasicPredictorFallback:
    def test_missing_item_gets_train_mean(self, sparse_setup):
        task, store, ids, y = sparse_setup
        predictor = BasicPredictor(task, store)
        assert str(predictor.region) == "[good]"
        missing = ids[-1]
        expected_mean = float(
            store._fetch(predictor.region).restrict_to(ids).y.mean()
        )
        assert predictor.predict(missing) == pytest.approx(expected_mean)

    def test_present_item_uses_model(self, sparse_setup):
        task, store, ids, y = sparse_setup
        predictor = BasicPredictor(task, store)
        pred = predictor.predict(ids[0])
        assert pred == pytest.approx(y[0], abs=2.0)


class TestCubePredictorFallback:
    def test_missing_item_gets_subset_mean(self, sparse_setup):
        task, store, ids, y = sparse_setup
        hier = HierarchicalDimension.from_spec(
            "group", ["g1", "g2"], level_names=("Any", "Group"), root_name="Any"
        )
        hierarchies = ItemHierarchies([hier])
        cube = BellwetherCubeBuilder(
            task, store, hierarchies, min_subset_size=5
        ).build("optimized")
        predictor = CubePredictor(cube, task, store)
        missing = ids[-1]
        pred = predictor.predict(missing)
        assert np.isfinite(pred)
        # falls back near the subset's mean target, not a wild extrapolation
        assert abs(pred - y.mean()) < 3 * y.std()


class TestTreeFallback:
    def test_missing_item_falls_back_to_root_or_mean(self, sparse_setup):
        task, store, ids, y = sparse_setup
        builder = BellwetherTreeBuilder(
            task, store, split_attrs=("group",), min_items=10, max_depth=1
        )
        tree = builder.build("rf")
        missing = ids[-1]
        assert np.isfinite(tree.predict(missing))
