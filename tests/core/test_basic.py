"""Tests for the basic bellwether search and budget-sweep reporting."""

import numpy as np
import pytest

from repro.core import (
    BasicBellwetherSearch,
    RandomSamplingBaseline,
    budget_sweep,
    render_table,
)
from repro.dimensions import Interval


@pytest.fixture(scope="module")
def search(small_task, small_store):
    store, costs, coverage = small_store
    return BasicBellwetherSearch(small_task, store, costs=costs)


class TestEvaluateAll:
    def test_every_feasible_region_evaluated(self, search):
        results = search.evaluate_all()
        assert len(results) > 0
        for r in results:
            assert r.n_items >= search.min_examples
            assert np.isfinite(r.rmse)

    def test_cached_scan(self, search):
        before = search.store.stats.full_scans
        search.evaluate_all()
        search.evaluate_all()
        assert search.store.stats.full_scans == before or (
            search.store.stats.full_scans == before + 1
        )  # at most one scan for repeated calls

    def test_item_restriction_changes_errors(self, search, small_task):
        subset = list(np.asarray(small_task.item_ids)[:15])
        full = {r.region: r.rmse for r in search.evaluate_all()}
        sub = {r.region: r.rmse for r in search.evaluate_all(item_ids=subset)}
        common = set(full) & set(sub)
        assert common
        assert any(abs(full[r] - sub[r]) > 1e-12 for r in common)


class TestRun:
    def test_budget_respected(self, search):
        result = search.run(budget=3.0)
        for r in result.feasible:
            assert r.cost <= 3.0

    def test_bellwether_is_min_error(self, search):
        result = search.run(budget=10.0)
        assert result.found
        assert result.bellwether.rmse == min(r.rmse for r in result.feasible)

    def test_impossible_budget(self, search):
        result = search.run(budget=-1.0)
        assert not result.found
        assert result.feasible == ()

    def test_larger_budget_never_worse(self, search):
        """The feasible set grows with budget, so min error is monotone."""
        errors = [search.run(budget=b).bellwether.rmse for b in (2.0, 6.0, 26.0)]
        assert errors[0] >= errors[1] >= errors[2]

    def test_sweep_matches_individual_runs(self, search):
        swept = dict(search.sweep([2.0, 6.0]))
        assert swept[2.0].bellwether.region == search.run(budget=2.0).bellwether.region

    def test_unbounded_budget_prefers_whole_space(self, search, small_task):
        """With sum-profit as both feature and target, [1-4, All] is exact."""
        result = search.run()
        assert result.bellwether.region == small_task.space.region(4, "All")
        assert result.bellwether.rmse == pytest.approx(0.0, abs=1e-6)


class TestResultStatistics:
    def test_average_error_at_least_bellwether(self, search):
        result = search.run(budget=10.0)
        assert result.average_error() >= result.bellwether.rmse

    def test_indistinguishable_fraction_bounds(self, search):
        result = search.run(budget=10.0)
        frac = result.indistinguishable_fraction(0.95)
        assert 0.0 <= frac <= 1.0

    def test_wider_confidence_more_indistinguishable(self, search):
        result = search.run(budget=10.0)
        assert result.indistinguishable_fraction(0.99) >= (
            result.indistinguishable_fraction(0.5)
        )

    def test_empty_result_nan(self, search):
        result = search.run(budget=-1.0)
        assert np.isnan(result.indistinguishable_fraction())
        assert np.isnan(result.average_error())


class TestFitModel:
    def test_model_predicts(self, search, small_task):
        result = search.run(budget=10.0)
        model = search.fit_model(result.bellwether.region)
        block = search.store.read(result.bellwether.region)
        pred = model.predict(block.x)
        assert pred.shape == (block.n_examples,)


class TestBudgetSweepReport:
    def test_points_and_table(self, search, small_task, small_generator):
        smp = RandomSamplingBaseline(
            small_task,
            {(t, s): 1.0 for t in range(1, 5) for s in ("WI", "IL", "NY", "MD")},
            generator=small_generator,
            seed=0,
        )
        points = budget_sweep(
            search, [2.0, 8.0, 20.0], sampling=smp, sampling_trials=2
        )
        assert [p.budget for p in points] == [2.0, 8.0, 20.0]
        for p in points:
            assert p.bel_err <= p.avg_err or np.isnan(p.bel_err)
        text = render_table(points)
        assert "bel_err" in text and "indist@95%" in text
        assert len(text.splitlines()) == len(points) + 2

    def test_infeasible_budget_point(self, search):
        points = budget_sweep(search, [-1.0])
        assert points[0].n_feasible == 0
        assert np.isnan(points[0].bel_err)


class TestSamplingBaseline:
    def test_error_positive_and_finite(self, small_task, small_generator):
        smp = RandomSamplingBaseline(
            small_task,
            {(t, s): 1.0 for t in range(1, 5) for s in ("WI", "IL", "NY", "MD")},
            generator=small_generator,
            seed=3,
        )
        err = smp.sample_error(budget=6.0, n_trials=3)
        assert np.isfinite(err) and err > 0

    def test_zero_budget_gives_nan(self, small_task, small_generator):
        smp = RandomSamplingBaseline(
            small_task,
            {(t, s): 1.0 for t in range(1, 5) for s in ("WI", "IL", "NY", "MD")},
            generator=small_generator,
        )
        assert np.isnan(smp.sample_error(budget=0.0, n_trials=2))
