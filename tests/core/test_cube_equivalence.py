"""Lemma 2 and Theorem 1 in action: cube algorithm equivalences."""

import pytest

from repro.core import BellwetherCubeBuilder
from repro.dimensions import HierarchicalDimension, ItemHierarchies
from repro.verify import APPROX, assert_same_cube


@pytest.fixture(scope="module")
def hierarchies() -> ItemHierarchies:
    cat = HierarchicalDimension.from_spec(
        "category", {"Either": ["a", "b"]},
        level_names=("Any", "Side", "Category"), root_name="Any",
    )
    return ItemHierarchies([cat])


@pytest.fixture(scope="module")
def builder(small_task, small_store, hierarchies):
    store, __, __ = small_store
    # the session task uses TrainingSetEstimator, which all three share
    return BellwetherCubeBuilder(small_task, store, hierarchies, min_subset_size=5)


class TestLemma2:
    def test_single_scan_equals_naive(self, builder):
        naive = builder.build(method="naive")
        single = builder.build(method="single_scan")
        assert_same_cube(naive, single, APPROX)

    def test_single_scan_uses_one_scan(self, builder, small_store):
        store, __, __ = small_store
        store.stats.reset()
        builder.build(method="single_scan")
        assert store.stats.full_scans == 1

    def test_naive_reads_per_subset(self, builder, small_store):
        store, __, __ = small_store
        store.stats.reset()
        builder.build(method="naive")
        n_regions = len(store.regions())
        n_subsets = len(builder.significant_subsets)
        assert store.stats.region_reads == n_regions * n_subsets


class TestTheorem1Optimized:
    def test_optimized_equals_single_scan(self, builder):
        """Suff-stats rollup computes the same errors as refitting (both use
        training-set error, the measure Theorem 1 makes algebraic)."""
        single = builder.build(method="single_scan")
        optimized = builder.build(method="optimized")
        assert_same_cube(single, optimized, APPROX)

    def test_optimized_uses_one_scan(self, builder, small_store):
        store, __, __ = small_store
        store.stats.reset()
        builder.build(method="optimized")
        assert store.stats.full_scans == 1
