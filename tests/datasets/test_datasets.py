"""Tests for the synthetic dataset generators and their planted structure."""

import numpy as np
import pytest

from repro.core import BasicBellwetherSearch, build_store
from repro.datasets import (
    make_bookstore,
    make_mailorder,
    make_scalability,
    make_simulation,
)
from repro.dimensions import Interval
from repro.ml import TrainingSetEstimator


@pytest.fixture(scope="module")
def mailorder():
    return make_mailorder(n_items=80, seed=0, error_estimator=TrainingSetEstimator())


class TestMailOrder:
    def test_schema_shape(self, mailorder):
        assert mailorder.item_table.n_rows == 80
        fact = mailorder.db.fact
        for col in ("item", "month", "state", "catalog", "quantity", "profit"):
            assert col in fact
        mailorder.db.check_integrity()

    def test_deterministic(self):
        a = make_mailorder(n_items=20, seed=5)
        b = make_mailorder(n_items=20, seed=5)
        assert np.allclose(a.db.fact["profit"], b.db.fact["profit"])

    def test_different_seeds_differ(self):
        a = make_mailorder(n_items=20, seed=5)
        b = make_mailorder(n_items=20, seed=6)
        assert a.db.fact.n_rows != b.db.fact.n_rows or not np.allclose(
            a.db.fact["profit"][:50], b.db.fact["profit"][:50]
        )

    def test_planted_region_found(self, mailorder):
        """The basic search recovers the planted MD window under budget."""
        store, costs, coverage = build_store(mailorder.task)
        search = BasicBellwetherSearch(mailorder.task, store, costs=costs)
        result = search.run(budget=60.0)
        interval, node = result.bellwether.region.values
        assert node == "MD"
        assert interval.end >= 4  # a substantial early-MD window

    def test_bellwether_beats_average(self, mailorder):
        store, costs, coverage = build_store(mailorder.task)
        search = BasicBellwetherSearch(mailorder.task, store, costs=costs)
        result = search.run(budget=60.0)
        assert result.bellwether.rmse < 0.5 * result.average_error()

    def test_planted_region_coverage_full(self, mailorder):
        """Planted cells are always present, so MD windows cover all items."""
        store, costs, coverage = build_store(mailorder.task)
        region = mailorder.space.region(8, "MD")
        assert coverage[region] == pytest.approx(1.0)

    def test_heterogeneous_plants_differ(self):
        ds = make_mailorder(n_items=30, seed=1, heterogeneous=True)
        assert len(set(ds.planted.values())) > 1


class TestBookstore:
    def test_no_unique_bellwether(self):
        """Without a plant, many regions stay indistinguishable (Fig 9b)."""
        ds = make_bookstore(n_items=60, seed=2)
        store, costs, coverage = build_store(ds.task)
        search = BasicBellwetherSearch(ds.task, store, costs=costs)
        # Mid budgets: too small for the near-exhaustive [1-t, All] regions,
        # which is where Figure 9's "no bellwether" regime lives.
        result = search.run(budget=60.0)
        assert result.found
        frac = result.indistinguishable_fraction(0.99)
        assert frac > 0.15  # a sizable tie set; the mail-order one is ~0.01

    def test_city_hierarchy(self):
        ds = make_bookstore(n_items=20, seed=0)
        dim = ds.space.dimensions[1]
        assert dim.level_names == ("All", "State", "City")


class TestSimulation:
    def test_leaf_count_grows_with_nodes(self):
        small = make_simulation(n_items=100, n_tree_nodes=3, seed=0)
        big = make_simulation(n_items=100, n_tree_nodes=31, seed=0)
        assert len(big.leaves) > len(small.leaves)

    def test_noise_increases_best_region_error(self):
        quiet = make_simulation(n_items=200, noise=0.05, seed=3)
        loud = make_simulation(n_items=200, noise=2.0, seed=3)
        def best_rmse(ds):
            search = BasicBellwetherSearch(ds.task, ds.store)
            return search.run().bellwether.rmse
        assert best_rmse(loud) > best_rmse(quiet)

    def test_store_covers_all_regions(self):
        ds = make_simulation(n_items=50, n_regions=8, seed=1)
        assert len(ds.store.regions()) == 8
        for region in ds.store.regions():
            assert ds.store._fetch(region).n_examples == 50

    def test_leaf_paths_are_consistent_partitions(self):
        ds = make_simulation(n_items=100, n_tree_nodes=15, seed=4)
        bits = {
            name: ds.task.item_table[name]
            for name in ds.task.item_feature_attrs
        }
        matches_per_item = np.zeros(100, dtype=int)
        for leaf in ds.leaves:
            mask = np.ones(100, dtype=bool)
            for j, v in leaf.path.items():
                mask &= bits[f"b{j}"].astype(str) == v
            matches_per_item += mask
        assert (matches_per_item == 1).all()  # leaves partition the items


class TestScalability:
    def test_example_count(self):
        ds = make_scalability(n_items=100, n_regions=12, seed=0)
        assert ds.n_examples_total == 100 * len(ds.store.regions())

    def test_hierarchy_fanout_controls_subsets(self):
        narrow = make_scalability(n_items=100, hierarchy_leaves=2, seed=0)
        wide = make_scalability(n_items=100, hierarchy_leaves=6, seed=0)
        def n_subsets(ds):
            from repro.core import BellwetherCubeBuilder
            return len(
                BellwetherCubeBuilder(
                    ds.task, ds.store, ds.hierarchies, min_subset_size=1
                ).significant_subsets
            )
        assert n_subsets(wide) > n_subsets(narrow)

    def test_numeric_feature_knob(self):
        ds = make_scalability(n_items=50, n_numeric_features=7, seed=0)
        assert len(ds.task.item_feature_attrs) == 7

    def test_planted_regions_best(self):
        """One of the four planted regions wins the basic search."""
        ds = make_scalability(n_items=300, n_regions=16, noise=0.05, seed=2)
        search = BasicBellwetherSearch(ds.task, ds.store)
        result = search.run()
        assert result.bellwether.region in ds.planted_regions


class TestOutOfCoreScalability:
    def test_backends_bit_identical(self, tmp_path):
        import numpy as np

        from repro.datasets import write_scalability

        a = write_scalability(
            tmp_path / "col", n_items=80, n_regions=8, seed=5,
            backend="columnar",
        )
        b = write_scalability(
            tmp_path / "npz", n_items=80, n_regions=8, seed=5, backend="npz"
        )
        assert a.planted_regions == b.planted_regions
        assert a.n_examples_total == b.n_examples_total == 80 * 8
        for region in a.store.regions():
            x, y = a.store.read(region), b.store.read(region)
            assert np.array_equal(x.x, y.x)
            assert np.array_equal(x.y, y.y)

    def test_planted_regions_win_out_of_core(self, tmp_path):
        from repro.datasets import write_scalability

        ds = write_scalability(
            tmp_path / "s", n_items=300, n_regions=16, noise=0.05, seed=2
        )
        result = BasicBellwetherSearch(ds.task, ds.store).run()
        assert result.bellwether.region in ds.planted_regions

    def test_unknown_backend_rejected(self, tmp_path):
        from repro.exceptions import ConfigError

        from repro.datasets import write_scalability

        with pytest.raises(ConfigError, match="backend"):
            write_scalability(tmp_path / "s", n_items=10, n_regions=4,
                              backend="tape")
