"""Trace analytics: self time, critical path, hot spans, record reports."""

import json

import pytest

from repro.exceptions import ConfigError
from repro.obs.report import (
    aggregate_span_stats,
    critical_path,
    load_records,
    render_critical_path,
    render_hot_spans,
    render_record_report,
    render_trace_report,
    self_time,
    top_spans,
)


def _span(name, duration, children=(), **attrs):
    return {
        "name": name,
        "duration_s": duration,
        "attrs": attrs,
        "children": list(children),
    }


@pytest.fixture
def tree():
    """driver(1.0) -> [scan(0.6) -> solve(0.5), render(0.1)]"""
    return _span(
        "driver",
        1.0,
        [
            _span("scan", 0.6, [_span("solve", 0.5)]),
            _span("render", 0.1),
        ],
    )


class TestSelfTime:
    def test_leaf_self_is_total(self, tree):
        leaf = tree["children"][1]
        assert self_time(leaf) == pytest.approx(0.1)

    def test_parent_self_excludes_children(self, tree):
        assert self_time(tree) == pytest.approx(0.3)  # 1.0 - 0.6 - 0.1

    def test_self_floored_at_zero(self):
        # clock skew can make children sum past the parent
        span = _span("p", 0.1, [_span("c", 0.2)])
        assert self_time(span) == 0.0


class TestAggregation:
    def test_stats_cover_every_span(self, tree):
        stats = aggregate_span_stats([tree])
        assert set(stats) == {"driver", "scan", "solve", "render"}
        assert stats["solve"].count == 1
        assert stats["solve"].self_s == pytest.approx(0.5)

    def test_same_name_spans_pool(self):
        roots = [_span("unit", 0.2), _span("unit", 0.3)]
        stats = aggregate_span_stats(roots)
        assert stats["unit"].count == 2
        assert stats["unit"].total_s == pytest.approx(0.5)

    def test_top_spans_ranked_by_self_time(self, tree):
        ranked = top_spans([tree], k=2)
        assert [s.name for s in ranked] == ["solve", "driver"]

    def test_top_spans_k_bounds(self, tree):
        assert len(top_spans([tree], k=100)) == 4
        assert top_spans([tree], k=0) == []


class TestCriticalPath:
    def test_descends_heaviest_child(self, tree):
        path = critical_path(tree)
        assert [s["name"] for s in path] == ["driver", "scan", "solve"]

    def test_single_span_path(self):
        assert [s["name"] for s in critical_path(_span("only", 0.1))] == ["only"]


class TestRendering:
    def test_tree_groups_siblings(self):
        root = _span("map", 0.4, [_span("chunk", 0.2), _span("chunk", 0.15)])
        out = render_trace_report([root])
        assert "chunk  x2" in out
        assert "-- span tree" in out
        assert "-- critical path --" in out
        assert "-- top 5 hot spans" in out

    def test_critical_path_picks_heaviest_root(self):
        roots = [_span("light", 0.1), _span("heavy", 0.9, [_span("inner", 0.8)])]
        out = render_critical_path(roots)
        assert "heavy" in out and "inner" in out and "light" not in out

    def test_hot_spans_limit(self, tree):
        out = render_hot_spans([tree], top=2)
        body = [l for l in out.splitlines()[1:]]
        assert len(body) == 2

    def test_empty_roots(self):
        assert render_trace_report([]) == "(no spans recorded)"
        assert render_critical_path([]) == "(no spans recorded)"


class TestRecordReports:
    def test_loads_and_renders_export(self, tmp_path):
        export = tmp_path / "runs.jsonl"
        record = {
            "name": "fig7",
            "elapsed_s": 1.5,
            "spans": [_span("driver", 1.4, [_span("scan", 1.0)])],
        }
        export.write_text(json.dumps(record) + "\n")
        records = load_records(export)
        out = render_record_report(records)
        assert "== fig7: 1.50s ==" in out
        assert "driver" in out and "scan" in out

    def test_metrics_only_record_gets_summary_line(self, tmp_path):
        export = tmp_path / "runs.jsonl"
        export.write_text(json.dumps({"name": "fig9", "elapsed_s": 0.25}) + "\n")
        out = render_record_report(load_records(export))
        assert "== fig9: 250.0ms ==" in out

    def test_name_filter(self, tmp_path):
        export = tmp_path / "runs.jsonl"
        export.write_text(
            json.dumps({"name": "fig7", "elapsed_s": 1.0}) + "\n"
            + json.dumps({"name": "fig9", "elapsed_s": 2.0}) + "\n"
        )
        records = load_records(export)
        assert "fig9" not in render_record_report(records, name="fig7")
        assert render_record_report(records, name="nope") == "(no records named 'nope')"

    def test_missing_file_raises_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            load_records(tmp_path / "absent.jsonl")

    def test_malformed_line_raises_with_location(self, tmp_path):
        export = tmp_path / "runs.jsonl"
        export.write_text('{"name": "ok", "elapsed_s": 1}\n{broken\n')
        with pytest.raises(ConfigError, match="runs.jsonl:2"):
            load_records(export)

    def test_blank_lines_skipped(self, tmp_path):
        export = tmp_path / "runs.jsonl"
        export.write_text('\n{"name": "ok", "elapsed_s": 1}\n\n')
        assert len(load_records(export)) == 1


class TestCli:
    def test_report_command_exit_zero(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        export = tmp_path / "runs.jsonl"
        export.write_text(
            json.dumps(
                {"name": "fig7", "elapsed_s": 1.0, "spans": [_span("driver", 0.9)]}
            )
            + "\n"
        )
        assert main(["report", str(export), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "driver" in out
