"""Journal analytics and the bench-regression sentinel."""

import json
from pathlib import Path

import pytest

from repro.exceptions import ConfigError
from repro.obs.journal import (
    Band,
    JournalRecord,
    Sentinel,
    group_by_name,
    group_by_run,
    load_journal,
    noise_band,
)

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = Path(__file__).parents[2]


def _record(name="bench", elapsed=1.0, metrics=None, **identity):
    return JournalRecord(
        name=name, elapsed_s=elapsed, metrics=metrics or {}, **identity
    )


def _series(name, elapsed_values, metrics_list=None):
    metrics_list = metrics_list or [None] * len(elapsed_values)
    return [
        _record(name, e, m) for e, m in zip(elapsed_values, metrics_list)
    ]


class TestLoading:
    def test_parses_schema_fields(self, tmp_path):
        journal = tmp_path / "b.json"
        journal.write_text(json.dumps({
            "name": "fig7.cube", "elapsed_s": 1.5, "run_id": "abc",
            "git_sha": "d34db33f", "hostname": "h", "python": "3.11.9",
            "workers": 2, "metrics": {"store.full_scans": 3},
            "figure": "fig7",
        }) + "\n")
        (rec,) = load_journal(journal)
        assert rec.name == "fig7.cube"
        assert rec.elapsed_s == 1.5
        assert rec.run_id == "abc"
        assert rec.workers == 2
        assert rec.metrics == {"store.full_scans": 3.0}
        assert rec.extra == {"figure": "fig7"}

    def test_tolerates_pre_runid_history(self, tmp_path):
        """Older journal lines predate run stamping; they parse as None."""
        journal = tmp_path / "b.json"
        journal.write_text(json.dumps({"name": "old", "elapsed_s": 0.5}) + "\n")
        (rec,) = load_journal(journal)
        assert rec.run_id is None
        assert rec.git_sha is None
        assert rec.workers is None

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ConfigError):
            load_journal(tmp_path / "absent.json")

    def test_nameless_record_raises_with_location(self, tmp_path):
        journal = tmp_path / "b.json"
        journal.write_text('{"elapsed_s": 1.0}\n')
        with pytest.raises(ConfigError, match="b.json:1"):
            load_journal(journal)

    def test_grouping(self):
        records = [
            _record("a", run_id="r1"),
            _record("b", run_id="r1"),
            _record("a", run_id=None),
        ]
        assert [len(v) for v in group_by_name(records).values()] == [2, 1]
        by_run = group_by_run(records)
        assert len(by_run["r1"]) == 2
        assert len(by_run[None]) == 1

    def test_real_repo_journal_parses(self):
        records = load_journal(REPO_ROOT / "BENCH_figures.json")
        assert records
        assert all(r.name for r in records)


class TestNoiseBand:
    def test_mad_band_around_median(self):
        band = noise_band([1.0, 1.1, 0.9, 1.05, 0.95], mad_k=4.0)
        assert band.center == pytest.approx(1.0)
        # MAD = 0.05 -> half-width 4 * 1.4826 * 0.05
        assert band.hi == pytest.approx(1.0 + 4 * 1.4826 * 0.05)
        assert band.contains(1.2)
        assert not band.contains(1.4)

    def test_rel_floor_widens_flat_history(self):
        band = noise_band([10.0] * 5, rel_floor=0.1)
        assert band.lo == pytest.approx(9.0)
        assert band.hi == pytest.approx(11.0)

    def test_abs_floor_dominates_near_zero(self):
        band = noise_band([0.001] * 5, rel_floor=0.1, abs_floor=0.25)
        assert band.hi == pytest.approx(0.251)

    def test_one_outlier_cannot_inflate_the_band(self):
        """Robustness: the MAD ignores a single historic spike."""
        calm = noise_band([1.0, 1.01, 0.99, 1.0, 1.02])
        spiky = noise_band([1.0, 1.01, 0.99, 5.0, 1.02])
        assert spiky.hi < 2.0  # a stddev-based band would blow past this
        assert spiky.center == pytest.approx(calm.center, abs=0.02)

    def test_empty_history_rejected(self):
        with pytest.raises(ConfigError):
            noise_band([])

    def test_band_contains_edges(self):
        band = Band(lo=1.0, hi=2.0, center=1.5, n=3)
        assert band.contains(1.0) and band.contains(2.0)
        assert not band.contains(0.999) and not band.contains(2.001)


class TestSentinel:
    def test_stable_trajectory_passes(self):
        report = Sentinel().check(
            _series("b", [1.0, 0.98, 1.02, 1.01, 0.99, 1.01])
        )
        assert report.ok
        assert report.checked == 1

    def test_double_slowdown_fails(self):
        report = Sentinel().check(
            _series("b", [1.0, 0.98, 1.02, 1.01, 0.99, 2.05])
        )
        assert not report.ok
        (finding,) = report.regressions
        assert finding.metric == "elapsed_s"
        assert "REGRESSION" in finding.line()

    def test_speedup_is_not_a_regression(self):
        """elapsed_s gates one-sided: faster is always fine."""
        report = Sentinel().check(
            _series("b", [1.0, 0.98, 1.02, 1.01, 0.99, 0.01])
        )
        assert report.ok

    def test_op_count_jump_fails_both_ways(self):
        metrics = [{"store.full_scans": 10.0}] * 5
        grew = Sentinel().check(_series(
            "b", [1.0] * 6, metrics + [{"store.full_scans": 20.0}]
        ))
        assert [f.metric for f in grew.regressions] == ["store.full_scans"]
        shrank = Sentinel().check(_series(
            "b", [1.0] * 6, metrics + [{"store.full_scans": 0.0}]
        ))
        assert [f.metric for f in shrank.regressions] == ["store.full_scans"]

    def test_op_count_within_floor_passes(self):
        metrics = [{"ml.linear.fits": 120.0}] * 5
        report = Sentinel().check(_series(
            "b", [1.0] * 6, metrics + [{"ml.linear.fits": 121.0}]
        ))
        assert report.ok

    def test_uncatalogued_metrics_not_gated(self):
        """Histogram summaries and friends are not op contracts."""
        metrics = [{"span.scan.s.p95": 0.1}] * 5
        report = Sentinel().check(_series(
            "b", [1.0] * 6, metrics + [{"span.scan.s.p95": 99.0}]
        ))
        assert report.ok

    def test_thin_history_skipped_not_failed(self):
        report = Sentinel(min_history=3).check(_series("b", [1.0, 9.0]))
        assert report.ok
        assert report.skipped == 1
        assert report.checked == 0

    def test_window_forgets_ancient_history(self):
        """Only the trailing window baselines: an old fast era can't haunt
        a bench that has legitimately re-baselined slower."""
        series = _series("b", [0.1] * 10 + [5.0] * 10 + [5.1])
        report = Sentinel(window=5).check(series)
        assert report.ok

    def test_each_bench_gated_independently(self):
        records = (
            _series("fast", [0.1, 0.1, 0.1, 0.1, 0.1])
            + _series("slow", [1.0, 1.0, 1.0, 1.0, 2.5])
        )
        report = Sentinel().check(records)
        assert [f.bench for f in report.regressions] == ["slow"]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigError):
            Sentinel(window=0)
        with pytest.raises(ConfigError):
            Sentinel(min_history=0)

    def test_render_summarizes(self):
        report = Sentinel().check(
            _series("b", [1.0, 0.98, 1.02, 1.01, 0.99, 2.05])
        )
        out = report.render()
        assert "1 regressions" in out
        assert "REGRESSION b :: elapsed_s" in out
        verbose = Sentinel().check(_series("b", [1.0] * 6)).render(verbose=True)
        assert "ok" in verbose


class TestFixturesAndCli:
    """The exact contracts CI enforces, via the committed fixtures."""

    def test_regression_fixture_fails(self):
        from repro.obs.__main__ import main

        code = main(
            ["sentinel", "--journal", str(FIXTURES / "journal_regression.jsonl")]
        )
        assert code == 1

    def test_stable_fixture_passes(self, capsys):
        from repro.obs.__main__ import main

        code = main(
            ["sentinel", "--journal", str(FIXTURES / "journal_stable.jsonl")]
        )
        assert code == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_repo_journal_passes(self):
        """The committed trajectory must satisfy its own sentinel — the
        blocking-CI invariant."""
        from repro.obs.__main__ import main

        code = main(
            ["sentinel", "--journal", str(REPO_ROOT / "BENCH_figures.json")]
        )
        assert code == 0

    def test_list_mode_shows_runs(self, capsys):
        from repro.obs.__main__ import main

        code = main([
            "sentinel", "--list",
            "--journal", str(FIXTURES / "journal_regression.jsonl"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "aaaaaaaaaaa1" in out
        assert "git=1111111" in out
