"""Metrics registry: counters, gauges, streaming histograms, snapshots."""

import math

import pytest

from repro.obs import MetricsRegistry, get_registry
from repro.obs.export import render_metrics_table


class TestCounters:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("a", 2)
        reg.inc("a")
        assert reg.counter("a").value == 3

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("a").inc(-1)

    def test_reset_keeps_instances(self):
        """Hot paths bind instruments at import; reset must not orphan them."""
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc(5)
        reg.reset()
        assert c.value == 0
        assert reg.counter("a") is c
        c.inc()
        assert reg.as_dict()["a"] == 1

    def test_name_collision_across_types(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")


class TestGauges:
    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(4.0)
        g.add(-1.5)
        assert g.value == 2.5


class TestHistograms:
    def test_quantiles_bracket_the_data(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in [0.001, 0.002, 0.003, 0.004, 0.005, 0.1]:
            h.observe(v)
        assert h.count == 6
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(0.1)
        # streaming quantiles are bucket-approximate: p50 must sit in the
        # body of the data, p99 near the top
        assert 0.001 <= h.quantile(0.5) <= 0.01
        assert h.quantile(0.99) <= h.max
        assert h.quantile(0.0) == h.min
        assert h.quantile(1.0) == h.max

    def test_no_raw_sample_retention(self):
        """Memory stays bounded: bucket counts only, no sample list."""
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for i in range(10_000):
            h.observe(1e-6 * (i + 1))
        assert len(h._buckets) < 150
        assert h.count == 10_000

    def test_empty_histogram_quantile_is_nan(self):
        reg = MetricsRegistry()
        assert math.isnan(reg.histogram("h").quantile(0.5))


class TestSnapshots:
    def test_diff_reports_counter_deltas_only(self):
        reg = MetricsRegistry()
        reg.inc("a", 5)
        reg.inc("b", 1)
        before = reg.as_dict()
        reg.inc("a", 2)
        delta = reg.diff(before)
        assert delta == {"a": 2}

    def test_histogram_summary_in_as_dict(self):
        reg = MetricsRegistry()
        reg.observe("h", 0.5)
        d = reg.as_dict()
        assert d["h.count"] == 1
        assert "h.p95" in d and "h.sum" in d

    def test_render_table_contains_names(self):
        reg = MetricsRegistry()
        reg.inc("store.full_scans", 3)
        table = render_metrics_table(reg)
        assert "store.full_scans" in table
        assert "3" in table


def test_global_registry_is_shared():
    assert get_registry() is get_registry()
