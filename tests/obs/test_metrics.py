"""Metrics registry: counters, gauges, streaming histograms, snapshots."""

import math

import pytest

from repro.obs import MetricsRegistry, get_registry
from repro.obs.export import render_metrics_table


class TestCounters:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("a", 2)
        reg.inc("a")
        assert reg.counter("a").value == 3

    def test_counter_rejects_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("a").inc(-1)

    def test_reset_keeps_instances(self):
        """Hot paths bind instruments at import; reset must not orphan them."""
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc(5)
        reg.reset()
        assert c.value == 0
        assert reg.counter("a") is c
        c.inc()
        assert reg.as_dict()["a"] == 1

    def test_name_collision_across_types(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")


class TestGauges:
    def test_gauge_moves_both_ways(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(4.0)
        g.add(-1.5)
        assert g.value == 2.5


class TestHistograms:
    def test_quantiles_bracket_the_data(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in [0.001, 0.002, 0.003, 0.004, 0.005, 0.1]:
            h.observe(v)
        assert h.count == 6
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(0.1)
        # streaming quantiles are bucket-approximate: p50 must sit in the
        # body of the data, p99 near the top
        assert 0.001 <= h.quantile(0.5) <= 0.01
        assert h.quantile(0.99) <= h.max
        assert h.quantile(0.0) == h.min
        assert h.quantile(1.0) == h.max

    def test_no_raw_sample_retention(self):
        """Memory stays bounded: bucket counts only, no sample list."""
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for i in range(10_000):
            h.observe(1e-6 * (i + 1))
        assert len(h._buckets) < 150
        assert h.count == 10_000

    def test_empty_histogram_quantile_is_nan(self):
        reg = MetricsRegistry()
        assert math.isnan(reg.histogram("h").quantile(0.5))


class TestQuantileEdges:
    def test_single_bucket_all_quantiles_agree(self):
        """Every observation in one bucket: any q returns a value in range."""
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for __ in range(100):
            h.observe(0.005)
        for q in (0.0, 0.25, 0.5, 0.75, 0.99, 1.0):
            assert h.min <= h.quantile(q) <= h.max
        assert h.quantile(0.5) == pytest.approx(0.005, rel=0.2)

    def test_q0_and_q1_are_exact_extremes(self):
        """q=0/q=1 bypass bucket interpolation and return true min/max."""
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (0.0012, 0.9, 42.0):
            h.observe(v)
        assert h.quantile(0.0) == 0.0012
        assert h.quantile(1.0) == 42.0

    def test_single_observation(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(3.0)
        for q in (0.0, 0.5, 1.0):
            assert h.quantile(q) == pytest.approx(3.0)

    def test_underflow_values_collapse_into_bucket_zero(self):
        """Values below 1e-9 (and negatives, clamped to 0) share bucket 0."""
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(0.0)
        h.observe(1e-12)
        h.observe(-5.0)  # clamps to 0
        assert h.count == 3
        assert h.min == 0.0
        assert h._buckets == {0: 3}
        # quantiles stay within the true observed range despite the shared
        # bucket's upper edge being 10**(-9 + 1/8)
        assert h.quantile(0.5) <= h.max

    def test_overflow_values_clamp_to_last_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(1e12)  # beyond the 1e9 grid ceiling
        h.observe(5e9)
        assert len(h._buckets) == 1  # both land in the final bucket
        assert h.quantile(0.5) <= h.max == 1e12
        assert h.quantile(1.0) == 1e12

    def test_quantile_outside_unit_interval_rejected(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_quantiles_monotone_in_q(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for i in range(1, 200):
            h.observe(i * 1e-3)
        qs = [h.quantile(q) for q in (0.0, 0.1, 0.5, 0.9, 0.99, 1.0)]
        assert qs == sorted(qs)


class TestHistogramStates:
    def test_state_roundtrip(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in (0.001, 0.01, 0.1):
            h.observe(v)
        state = h.state()
        assert state["count"] == 3
        assert state["total"] == pytest.approx(0.111)
        assert sum(state["buckets"].values()) == 3

    def test_diff_states_isolates_the_window(self):
        from repro.obs.metrics import Histogram

        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(0.5)
        before = h.state()
        h.observe(0.005)  # new min
        h.observe(0.7)    # new max
        delta = Histogram.diff_states(before, h.state())
        assert delta["count"] == 2
        assert delta["total"] == pytest.approx(0.705)
        assert delta["min"] == 0.005
        assert delta["max"] == 0.7
        assert sum(delta["buckets"].values()) == 2

    def test_diff_states_none_when_no_observations(self):
        from repro.obs.metrics import Histogram

        reg = MetricsRegistry()
        h = reg.histogram("h")
        h.observe(1.0)
        assert Histogram.diff_states(h.state(), h.state()) is None

    def test_merge_matches_direct_observation(self):
        """observe(a..) ∥ observe(b..) then merge ≡ observe(a.. + b..)."""
        a_vals = [0.001, 0.02, 0.3, 0.004]
        b_vals = [0.05, 0.6, 0.0007]
        serial = MetricsRegistry()
        for v in a_vals + b_vals:
            serial.observe("h", v)
        parent = MetricsRegistry()
        worker = MetricsRegistry()
        for v in a_vals:
            parent.observe("h", v)
        before = worker.histogram_states()  # empty: fresh registry
        for v in b_vals:
            worker.observe("h", v)
        parent.merge_histogram_deltas(worker.diff_histogram_states(before))
        hs, hp = serial.histogram("h"), parent.histogram("h")
        assert hp.count == hs.count
        assert hp.total == pytest.approx(hs.total)
        assert hp.min == hs.min and hp.max == hs.max
        assert hp._buckets == hs._buckets
        for q in (0.5, 0.95, 0.99):
            assert hp.quantile(q) == hs.quantile(q)

    def test_merge_into_inherited_state(self):
        """Fork semantics: the worker inherits the parent's buckets; only
        the window's observations merge back."""
        parent = MetricsRegistry()
        parent.observe("h", 0.1)
        # simulate fork: worker starts with identical state
        worker = MetricsRegistry()
        worker.observe("h", 0.1)
        before = worker.histogram_states()
        worker.observe("h", 0.2)
        parent.merge_histogram_deltas(worker.diff_histogram_states(before))
        assert parent.histogram("h").count == 2  # not 3


class TestSnapshots:
    def test_diff_reports_counter_deltas_only(self):
        reg = MetricsRegistry()
        reg.inc("a", 5)
        reg.inc("b", 1)
        before = reg.as_dict()
        reg.inc("a", 2)
        delta = reg.diff(before)
        assert delta == {"a": 2}

    def test_histogram_summary_in_as_dict(self):
        reg = MetricsRegistry()
        reg.observe("h", 0.5)
        d = reg.as_dict()
        assert d["h.count"] == 1
        assert "h.p95" in d and "h.sum" in d

    def test_diff_reports_histogram_summaries_when_changed(self):
        """Histogram summary keys report current values (not deltas) and
        appear only when the summary actually moved."""
        reg = MetricsRegistry()
        reg.observe("h", 0.5)
        before = reg.as_dict()
        delta = reg.diff(before)
        assert delta == {}  # nothing changed since the snapshot
        reg.observe("h", 0.5)
        delta = reg.diff(before)
        assert delta["h.count"] == 2  # current value, not the +1 delta
        assert delta["h.sum"] == pytest.approx(1.0)
        # p50 of two identical observations equals the p50 before, so the
        # quantile keys only show up if their value moved
        assert set(delta) <= {"h.count", "h.sum", "h.p50", "h.p95", "h.p99"}

    def test_diff_histogram_appears_from_nothing(self):
        reg = MetricsRegistry()
        before = reg.as_dict()
        reg.observe("h", 0.25)
        delta = reg.diff(before)
        assert delta["h.count"] == 1
        assert delta["h.p50"] > 0

    def test_render_table_contains_names(self):
        reg = MetricsRegistry()
        reg.inc("store.full_scans", 3)
        table = render_metrics_table(reg)
        assert "store.full_scans" in table
        assert "3" in table


def test_global_registry_is_shared():
    assert get_registry() is get_registry()
