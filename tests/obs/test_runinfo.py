"""Run identity: process-stable run ids and journal stamping."""

import json
import re

from repro.obs import BenchJournal, current_run_id, run_context
from repro.obs.runinfo import git_sha


class TestRunId:
    def test_stable_within_process(self):
        assert current_run_id() == current_run_id()

    def test_shape(self):
        assert re.fullmatch(r"[0-9a-f]{12}", current_run_id())


class TestGitSha:
    def test_short_sha_or_none(self):
        sha = git_sha()
        assert sha is None or re.fullmatch(r"[0-9a-f]{4,40}", sha)

    def test_cached_across_calls(self):
        assert git_sha() == git_sha()


class TestRunContext:
    def test_identity_keys_present(self):
        ctx = run_context()
        assert ctx["run_id"] == current_run_id()
        assert set(ctx) == {"run_id", "git_sha", "hostname", "python"}
        assert ctx["python"].count(".") == 2

    def test_workers_included_on_request(self):
        assert run_context(workers=4)["workers"] == 4
        assert "workers" not in run_context()


class TestJournalStamping:
    def test_records_carry_run_identity(self, tmp_path):
        journal = BenchJournal(tmp_path / "BENCH_t.json")
        journal.record("bench_a", 0.5, workers=2)
        (line,) = (tmp_path / "BENCH_t.json").read_text().splitlines()
        record = json.loads(line)
        assert record["run_id"] == current_run_id()
        assert record["hostname"]
        assert record["python"]
        assert record["workers"] == 2
        assert "git_sha" in record

    def test_context_overrides_stamp(self, tmp_path):
        journal = BenchJournal(tmp_path / "BENCH_t.json", context={"python": "x"})
        record = journal.record("bench_a", 0.1)
        assert record["python"] == "x"
        assert record["run_id"] == current_run_id()

    def test_stamping_can_be_disabled(self, tmp_path):
        journal = BenchJournal(tmp_path / "BENCH_t.json", stamp_run=False)
        record = journal.record("bench_a", 0.1)
        assert "run_id" not in record
        assert "hostname" not in record
