"""Tracing spans: nesting, timing, the null recorder, and exporters."""

import json
import time

import pytest

from repro.obs import get_tracer, render_span_tree, span_to_dict
from repro.obs.trace import NullSpan, Tracer


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable()
    return t


class TestNesting:
    def test_children_attach_to_parent(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        (root,) = tracer.take_roots()
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner.a", "inner.b"]
        assert root.children[0].children == []

    def test_durations_nest(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                time.sleep(0.01)
        assert inner.duration >= 0.01
        assert outer.duration >= inner.duration

    def test_take_roots_drains(self, tracer):
        with tracer.span("a"):
            pass
        assert [s.name for s in tracer.take_roots()] == ["a"]
        assert tracer.take_roots() == []

    def test_annotate_adds_attrs(self, tracer):
        with tracer.span("a", x=1) as sp:
            sp.annotate(y=2)
        (root,) = tracer.take_roots()
        assert root.attrs == {"x": 1, "y": 2}

    def test_span_open_across_generator_suspension(self, tracer):
        """The store's scan() holds a span open while yielding blocks."""

        def scanner():
            with tracer.span("scan"):
                yield 1
                yield 2

        with tracer.span("outer"):
            for __ in scanner():
                with tracer.span("work"):
                    pass
        (root,) = tracer.take_roots()
        assert root.name == "outer"
        names = sorted(c.name for c in root.children)
        assert "scan" in names
        scan = next(c for c in root.children if c.name == "scan")
        assert [c.name for c in scan.children] == ["work", "work"]


class TestDisabled:
    def test_disabled_returns_shared_null_span(self):
        t = Tracer()
        a = t.span("x", big=1)
        b = t.span("y")
        assert isinstance(a, NullSpan)
        assert a is b  # one shared instance: no allocation per call

    def test_disabled_records_nothing(self):
        t = Tracer()
        with t.span("x") as sp:
            sp.annotate(n=1)
        assert t.roots == []
        assert t.take_roots() == []

    def test_fresh_tracer_disabled_by_default(self):
        assert not Tracer().enabled


class TestExport:
    def test_render_tree_aggregates_siblings(self, tracer):
        with tracer.span("root"):
            for i in range(5):
                with tracer.span("child", idx=i):
                    pass
        text = render_span_tree(tracer.take_roots())
        assert "root" in text
        assert "child  x5" in text  # one aggregated line, not five
        assert "idx" not in text  # differing attrs dropped from the group

    def test_render_tree_keeps_common_attrs(self, tracer):
        with tracer.span("scan", store="MemoryStore"):
            pass
        text = render_span_tree(tracer.take_roots())
        assert "store=MemoryStore" in text

    def test_span_to_dict_roundtrips_json(self, tracer):
        with tracer.span("outer", method="rf"):
            with tracer.span("inner"):
                pass
        (root,) = tracer.take_roots()
        record = span_to_dict(root)
        parsed = json.loads(json.dumps(record))
        assert parsed["name"] == "outer"
        assert parsed["attrs"] == {"method": "rf"}
        assert parsed["children"][0]["name"] == "inner"
        assert parsed["duration_s"] >= 0


class TestThreadLocalStacks:
    def test_worker_thread_spans_root_independently(self, tracer):
        """A span opened on another thread must not nest under this
        thread's open span — each thread owns its own stack."""
        import threading

        def worker():
            with tracer.span("worker.op"):
                pass

        with tracer.span("main.op"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            # the worker span finished with nothing beneath it on ITS
            # stack, so it landed in roots while main.op is still open
            assert [s.name for s in tracer.roots] == ["worker.op"]
        names = sorted(s.name for s in tracer.take_roots())
        assert names == ["main.op", "worker.op"]

    def test_current_span_is_per_thread(self, tracer):
        import threading

        seen = {}

        def worker():
            seen["worker"] = tracer.current_span()

        with tracer.span("outer") as outer:
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert tracer.current_span() is outer
        assert seen["worker"] is None
        assert tracer.current_span() is None


class TestAdoption:
    def test_mark_and_take_roots_since(self, tracer):
        with tracer.span("before"):
            pass
        mark = tracer.mark_roots()
        with tracer.span("after.a"):
            pass
        with tracer.span("after.b"):
            pass
        since = tracer.take_roots_since(mark)
        assert [s.name for s in since] == ["after.a", "after.b"]
        assert [s.name for s in tracer.take_roots()] == ["before"]

    def test_adopt_under_parent(self, tracer):
        with tracer.span("orphan"):
            pass
        (orphan,) = tracer.take_roots()
        with tracer.span("map") as map_span:
            tracer.adopt([orphan], map_span)
        (root,) = tracer.take_roots()
        assert [c.name for c in root.children] == ["orphan"]

    def test_adopt_as_roots(self, tracer):
        with tracer.span("x"):
            pass
        (x,) = tracer.take_roots()
        tracer.adopt([x])
        assert [s.name for s in tracer.take_roots()] == ["x"]

    def test_adopt_does_not_reobserve_histograms(self, tracer):
        """Re-parenting must not double-count span.*.s — the observations
        already arrived (shared registry or merged worker deltas)."""
        from repro.obs import get_registry

        hist = get_registry().histogram("span.adoptee.s")
        before = hist.count
        with tracer.span("adoptee"):
            pass
        (adoptee,) = tracer.take_roots()
        assert hist.count == before + 1
        with tracer.span("map") as map_span:
            tracer.adopt([adoptee], map_span)
        tracer.take_roots()
        assert hist.count == before + 1  # the adoptee was not replayed

    def test_reset_clears_stack_and_roots(self, tracer):
        with tracer.span("done"):
            pass
        open_span = tracer.span("open")
        open_span.__enter__()
        tracer.reset()
        assert tracer.roots == []
        assert tracer.current_span() is None
        open_span.__exit__(None, None, None)  # exits quietly post-reset
        assert tracer.roots == []


class TestSpanRoundtrip:
    def test_span_from_dict_rebuilds_the_tree(self, tracer):
        from repro.obs import span_from_dict

        with tracer.span("outer", method="rf"):
            with tracer.span("inner"):
                pass
        (root,) = tracer.take_roots()
        rebuilt = span_from_dict(span_to_dict(root))
        assert rebuilt.name == "outer"
        assert rebuilt.attrs == {"method": "rf"}
        assert rebuilt.duration == pytest.approx(root.duration)
        assert [c.name for c in rebuilt.children] == ["inner"]
        # a rebuilt span is adoptable by any tracer
        tracer.adopt([rebuilt])
        assert [s.name for s in tracer.take_roots()] == ["outer"]


class TestObserveSession:
    def test_observe_captures_spans_and_metrics(self):
        from repro.obs import get_registry, observe

        tracer = get_tracer()
        was = tracer.enabled
        with observe("unit", trace=True) as report:
            with tracer.span("step"):
                pass
            get_registry().inc("obs.test.counter", 7)
        assert tracer.enabled is was  # state restored
        assert report.elapsed_s > 0
        assert any(s.name == "step" for s in report.spans)
        assert report.metrics["obs.test.counter"] == 7
        assert "step" in report.render()

    def test_observe_appends_jsonl(self, tmp_path):
        from repro.obs import observe

        path = tmp_path / "bench.jsonl"
        for __ in range(2):
            with observe("unit") as report:
                pass
            report.append_to(path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "unit"


def test_bench_journal_appends(tmp_path):
    from repro.obs import BenchJournal

    journal = BenchJournal(tmp_path / "BENCH_x.json", context={"suite": "t"})
    journal.record("bench_a", 0.25, metrics={"store.full_scans": 1})
    journal.record("bench_a", 0.30)
    lines = (tmp_path / "BENCH_x.json").read_text().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["name"] == "bench_a"
    assert first["suite"] == "t"
    assert first["metrics"] == {"store.full_scans": 1}
    assert "timestamp" in first
