"""The paper's scan bounds, asserted from metrics instead of assumed.

Lemma 1: the RainForest-style bellwether tree reads the entire training
data once per level — at most ``depth + 1`` full scans for the construction
loop.  Lemma 2: the single-scan / optimized bellwether cubes read it exactly
once.  The counts come from :class:`~repro.storage.IOStats` windows
(``after - before``), so a store shared between tests never needs a
``reset()``.
"""

import pytest

from repro.core import (
    BasicBellwetherSearch,
    BellwetherCubeBuilder,
    BellwetherTreeBuilder,
    build_store,
)
from repro.datasets import make_mailorder
from repro.ml import TrainingSetEstimator
from repro.obs import get_registry


@pytest.fixture(scope="module")
def mailorder():
    ds = make_mailorder(
        n_items=50, n_months=6, seed=3, heterogeneous=True,
        error_estimator=TrainingSetEstimator(),
    )
    store, costs, coverage = build_store(ds.task)
    return ds, store, costs


class TestLemma2CubeScans:
    """Cube construction: exactly one full scan for both scan algorithms."""

    @pytest.mark.parametrize("method", ["single_scan", "optimized"])
    def test_cube_single_full_scan(self, mailorder, method):
        ds, store, __ = mailorder
        builder = BellwetherCubeBuilder(
            ds.task, store, ds.hierarchies, min_subset_size=5
        )
        before = store.stats.snapshot()
        cube = builder.build(method=method)
        delta = store.stats - before
        assert delta.full_scans == 1
        assert delta.region_reads == 0
        assert len(cube) > 0

    def test_naive_cube_reads_per_subset(self, mailorder):
        """The contrast: naive pays one pass of region reads per subset."""
        ds, store, __ = mailorder
        builder = BellwetherCubeBuilder(
            ds.task, store, ds.hierarchies, min_subset_size=5
        )
        n_regions = len(store.regions())
        n_subsets = len(builder.significant_subsets)
        before = store.stats.snapshot()
        builder.build(method="naive")
        delta = store.stats - before
        assert delta.full_scans == 0
        assert delta.region_reads == n_regions * n_subsets


class TestLemma1TreeScans:
    """RF tree construction: at most one full scan per level."""

    def test_rf_tree_scans_bounded_by_depth(self, mailorder):
        ds, store, __ = mailorder
        max_depth = 2
        builder = BellwetherTreeBuilder(
            ds.task, store, min_items=10, max_depth=max_depth
        )
        before = store.stats.snapshot()
        tree = builder.build(method="rf")
        delta = store.stats - before
        # exactly one scan per constructed level; never more than max_depth + 1
        assert delta.full_scans == tree.n_levels
        assert delta.full_scans <= max_depth + 1

    def test_naive_tree_costs_more_io(self, mailorder):
        """The same tree built naively touches far more data (per split)."""
        ds, store, __ = mailorder
        builder = BellwetherTreeBuilder(
            ds.task, store, min_items=10, max_depth=1
        )
        n_regions = len(store.regions())
        before = store.stats.snapshot()
        builder.build(method="naive")
        naive_delta = store.stats - before
        # the naive path re-reads every region at least once per node
        assert naive_delta.region_reads >= n_regions


class TestSearchScans:
    def test_evaluate_all_is_one_scan_and_cached(self, mailorder):
        ds, store, costs = mailorder
        search = BasicBellwetherSearch(ds.task, store, costs=costs)
        before = store.stats.snapshot()
        search.evaluate_all()
        assert (store.stats - before).full_scans == 1
        search.evaluate_all()
        search.run(budget=40.0)
        assert (store.stats - before).full_scans == 1  # cached thereafter

    def test_empty_item_subset_not_conflated_with_all_items(self, mailorder):
        """Regression: frozenset([]) used to collide with the all-items key."""
        ds, store, costs = mailorder
        search = BasicBellwetherSearch(ds.task, store, costs=costs)
        empty = search.evaluate_all(item_ids=[])
        assert empty == []
        full = search.evaluate_all()
        assert len(full) > 0
        # and the cache still serves both correctly afterwards
        assert search.evaluate_all(item_ids=[]) == []
        assert search.evaluate_all() == full


class TestIOStatsDiff:
    def test_diff_and_sub_agree(self, mailorder):
        __, store, __ = mailorder
        before = store.stats.snapshot()
        store.read(store.regions()[0])
        assert (store.stats - before).region_reads == 1
        assert store.stats.diff(before) == store.stats - before
        assert (store.stats - before).bytes_read > 0

    def test_registry_mirrors_store_counters(self, mailorder):
        """IOStats folds into the global registry as store.* counters."""
        __, store, __ = mailorder
        registry = get_registry()
        before = registry.as_dict()
        store.read(store.regions()[0])
        list(store.scan())
        delta = registry.diff(before)
        assert delta["store.region_reads"] == 1
        assert delta["store.full_scans"] == 1
        assert delta["store.bytes_read"] > 0
