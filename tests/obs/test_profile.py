"""Per-span resource profiling: annotations, gauges, and the observe hook."""

import pytest

from repro.obs import ResourceProfiler, get_registry, observe
from repro.obs.catalog import (
    OBS_GC_COLLECTIONS,
    OBS_READ_RATE_BPS,
    OBS_RSS_PEAK_BYTES,
    STORE_BYTES_READ,
)
from repro.obs.profile import peak_rss_bytes
from repro.obs.trace import Tracer


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable()
    t.set_profiler(ResourceProfiler())
    return t


def test_peak_rss_is_positive():
    assert peak_rss_bytes() > 0


class TestSpanAnnotations:
    def test_rss_annotated_on_exit(self, tracer):
        with tracer.span("work"):
            pass
        (root,) = tracer.take_roots()
        assert root.attrs["rss_peak_mb"] > 0

    def test_read_rate_annotated_when_bytes_flow(self, tracer):
        bytes_read = get_registry().counter(STORE_BYTES_READ)
        with tracer.span("scan.like"):
            bytes_read.inc(1_000_000)
        (root,) = tracer.take_roots()
        assert root.attrs["read_mb_s"] > 0

    def test_no_read_rate_without_reads(self, tracer):
        with tracer.span("idle"):
            pass
        (root,) = tracer.take_roots()
        assert "read_mb_s" not in root.attrs

    def test_gc_collections_annotated_when_gc_runs(self, tracer):
        import gc

        with tracer.span("alloc"):
            gc.collect()
        (root,) = tracer.take_roots()
        assert root.attrs.get("gc_collections", 0) >= 1

    def test_nested_spans_profile_independently(self, tracer):
        bytes_read = get_registry().counter(STORE_BYTES_READ)
        with tracer.span("outer"):
            with tracer.span("inner"):
                bytes_read.inc(500_000)
        (root,) = tracer.take_roots()
        inner = root.children[0]
        assert inner.attrs["read_mb_s"] > 0
        assert root.attrs["rss_peak_mb"] > 0


class TestGauges:
    def test_gauges_track_latest_sample(self, tracer):
        registry = get_registry()
        with tracer.span("work"):
            registry.counter(STORE_BYTES_READ).inc(2_000_000)
        assert registry.gauge(OBS_RSS_PEAK_BYTES).value > 0
        assert registry.gauge(OBS_GC_COLLECTIONS).value >= 0
        assert registry.gauge(OBS_READ_RATE_BPS).value > 0


class TestObserveIntegration:
    def test_profile_implies_trace_and_annotates(self):
        from repro.obs import get_tracer

        tracer = get_tracer()
        with observe("profiled", profile=True) as report:
            with tracer.span("step"):
                pass
        assert tracer.profiler is None  # uninstalled on exit
        (span,) = [s for s in report.spans if s.name == "step"]
        assert span.attrs["rss_peak_mb"] > 0

    def test_plain_trace_does_not_profile(self):
        from repro.obs import get_tracer

        tracer = get_tracer()
        with observe("traced", trace=True) as report:
            with tracer.span("step"):
                pass
        (span,) = [s for s in report.spans if s.name == "step"]
        assert "rss_peak_mb" not in span.attrs


def test_profiler_tolerates_spans_opened_before_install():
    t = Tracer()
    t.enable()
    span = t.span("early")
    span.__enter__()
    t.set_profiler(ResourceProfiler())
    span.__exit__(None, None, None)  # no entry snapshot: must not raise
    (root,) = t.take_roots()
    assert "rss_peak_mb" not in root.attrs
