"""Run the library's docstring examples as tests."""

import doctest

import pytest

import repro.dimensions.hierarchy
import repro.dimensions.interval
import repro.dimensions.region
import repro.table.predicates
import repro.table.query

MODULES = [
    repro.dimensions.hierarchy,
    repro.dimensions.interval,
    repro.dimensions.region,
    repro.table.predicates,
    repro.table.query,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"
    assert result.attempted > 0, f"no doctests found in {module.__name__}"
